package bench

// The published reference values of the VDom paper's evaluation (ASPLOS
// 2023), encoded so the harness can print measured-vs-paper deviations
// automatically. Table values are exact; figure values are read off the
// charts and therefore approximate.

// PaperTable3 maps each Table 3 operation to its [X86, ARM] cycles.
var PaperTable3 = map[string][2]float64{
	"empty API call return":           {6.7, 16.5},
	"empty syscall return":            {173.4, 268.3},
	"update PKRU or DACR":             {25.6, 18.1},
	"VMFUNC":                          {169, 0},
	"fast wrvdr API call return":      {68.8, 406},
	"secure wrvdr API call return":    {104, 406},
	"secure wrvdr with 4KB eviction":  {1639, 2274},
	"secure wrvdr with 2MB eviction":  {1605, 3159},
	"secure wrvdr with 64MB eviction": {8097, 11778},
	"secure wrvdr with VDS switch":    {583, 723},
}

// PaperTable4 holds Table 4's rows at the vdom counts of table4Counts;
// NaN-like zeros mark the cells the paper prints as "NA".
var PaperTable4 = map[string][8]float64{
	"VDom X86f seq":  {70, 73, 82, 151, 121, 141, 138, 134},
	"VDom X86f trig": {70, 75, 82, 530, 552, 566, 704, 701},
	"VDom X86s seq":  {107, 104, 113, 183, 152, 171, 161, 166},
	"VDom X86s trig": {105, 106, 113, 573, 611, 623, 771, 765},
	"VDom X86e seq":  {69, 70, 82, 301, 1565, 1594, 1598, 1605},
	"libmpk seq":     {102, 103, 150, 30609, 30909, 30877, 30721, 30704},
	"EPK seq":        {97, 97, 101, 111, 0, 115, 162, 0},
	"EPK trig":       {97, 97, 101, 0, 0, 350, 830, 830},
	"VDom ARM seq":   {406, 423, 491, 486, 536, 480, 490, 533},
	"VDom ARM trig":  {408, 433, 668, 662, 695, 714, 779, 811},
	"VDom ARMe seq":  {408, 421, 1613, 1895, 3137, 3161, 3187, 3185},
}

// PaperTable5 holds Table 5's overheads (%) for 2/4/8/16/32 VDSes; <0
// marks "undefined".
var PaperTable5 = map[string][5]float64{
	"X86": {3.8, 8.9, 20.9, 38.8, 56.1},
	"ARM": {19.7, 33.8, -1, -1, -1},
}

// PaperHeadlines are the single-number claims of §7 with their source.
var PaperHeadlines = []struct {
	Name  string
	Value float64
	Unit  string
}{
	{"httpd VDom overhead X86 1KB", 0.12, "%"},
	{"httpd VDom overhead X86 128KB", 2.18, "%"},
	{"httpd VDom overhead ARM max", 2.65, "%"},
	{"MySQL VDom overhead X86", 0.47, "%"},
	{"MySQL VDom overhead ARM", 2.59, "%"},
	{"MySQL EPK overhead X86", 7.33, "%"},
	{"PMO lowerbound X86", 2.06, "%"},
	{"PMO VDS switch X86", 7.03, "%"},
	{"PMO eviction X86", 16.21, "%"},
	{"PMO EPK X86", 8.71, "%"},
	{"PMO libmpk 2MB 1 thread", 17.73, "%"},
	{"PMO libmpk 2MB 8 threads", 977.77, "%"},
	{"PMO libmpk 4KB 8 threads", 3941.95, "%"},
	{"switch_mm slowdown X86", 6.0, "%"},
	{"switch_mm slowdown ARM", 7.63, "%"},
	{"VDS context switch X86", 771.7, "cycles"},
	{"VDS context switch ARM", 1545.1, "cycles"},
}
