// Package workload implements the application models of the VDom paper's
// evaluation: the httpd+OpenSSL server (Figures 1 and 5), the MySQL OLTP
// server (Figure 6), the persistent-memory String Replace benchmark
// (Figure 7), the synthetic domain-access patterns (Table 4), the
// multi-VDS memory-synchronization benchmark (Table 5), a UnixBench-like
// kernel suite (§7.3), and an LTP-like compatibility suite (§7.1).
//
// Each workload issues the same protection events per unit of work as the
// paper's applications, on top of the simulated substrate; baseline work
// amounts are calibrated to the paper's absolute throughputs so that
// relative overheads are comparable.
//
// It covers the paper's §7 (evaluation) workloads and is the "Workloads"
// row of the DESIGN.md §3 module map. The Table 4 pattern runners accept
// a metrics.Registry and a metrics.Trace (PatternConfig) whose cycle
// attribution sums exactly to each cell's measured total
// (OBSERVABILITY.md).
package workload

import (
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/epk"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/pagetable"
	"vdom/internal/sim"
)

// System selects which protection system a workload runs under.
type System int

// The compared systems of §7.6.
const (
	// Original runs unprotected.
	Original System = iota
	// VDom protects with the paper's system.
	VDom
	// EPK protects with the VMFUNC/EPT baseline inside a VM.
	EPK
	// Libmpk protects with the disabled-PTE baseline.
	Libmpk
	// VDomLowerbound protects everything with one physical domain
	// (the paper's "lowerbound" line).
	VDomLowerbound
)

// String names the system as the paper's figures do.
func (s System) String() string {
	switch s {
	case Original:
		return "original"
	case VDom:
		return "VDom"
	case EPK:
		return "EPK"
	case Libmpk:
		return "libmpk"
	case VDomLowerbound:
		return "lowerbound"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// ClockHz returns the simulated clock rate used to convert cycles to
// seconds: 2.1 GHz for the Xeon Gold 6230R, 1.2 GHz for the Raspberry
// Pi 3's Cortex-A53, 3.8 GHz for the projected POWER9, and 1.5 GHz for
// the projected sealable-PKS RISC-V core (a U74-class in-order part;
// the SealPK prototype itself is an FPGA softcore).
func ClockHz(arch cycles.Arch) float64 {
	switch arch {
	case cycles.ARM:
		return 1.2e9
	case cycles.Power:
		return 3.8e9
	case cycles.RISCV:
		return 1.5e9
	default:
		return 2.1e9
	}
}

// DefaultCores returns the hardware-thread count of each evaluation
// platform (52 on the Xeon, 4 on the Pi, 44 on the projected POWER9,
// 4 on the projected RISC-V board).
func DefaultCores(arch cycles.Arch) int {
	switch arch {
	case cycles.ARM:
		return 4
	case cycles.Power:
		return 44
	case cycles.RISCV:
		return 4
	default:
		return 52
	}
}

// platform bundles one booted machine + kernel + process for a workload.
type platform struct {
	machine *hw.Machine
	kernel  *kernel.Kernel
	proc    *kernel.Process
	env     *sim.Env
	sched   *kernel.Sched
	rng     *sim.Rand
	next    pagetable.VAddr
}

func newPlatform(arch cycles.Arch, cores int, vdomKernel bool, seed uint64) *platform {
	m := hw.NewMachine(hw.Config{Arch: arch, NumCores: cores, TLBCapacity: 0})
	k := kernel.New(kernel.Config{Machine: m, VDomEnabled: vdomKernel})
	env := sim.NewEnv()
	return &platform{
		machine: m,
		kernel:  k,
		proc:    k.NewProcess(),
		env:     env,
		sched:   kernel.NewSched(env, k),
		rng:     sim.NewRand(seed),
		next:    0x20_0000_0000,
	}
}

// alloc reserves a PMD-separated virtual region of `bytes` (page-aligned
// up) and mmaps it through task.
func (pl *platform) alloc(task *kernel.Task, bytes uint64) (pagetable.VAddr, error) {
	bytes = (bytes + pagetable.PageSize - 1) &^ (pagetable.PageSize - 1)
	base := pl.next
	pl.next += pagetable.VAddr(bytes) + 8*pagetable.PMDSize
	_, err := task.Mmap(base, bytes, true)
	return base, err
}

// mustAlloc is alloc that panics on error (setup-time only).
func (pl *platform) mustAlloc(task *kernel.Task, bytes uint64) pagetable.VAddr {
	a, err := pl.alloc(task, bytes)
	if err != nil {
		panic(fmt.Sprintf("workload: setup mmap failed: %v", err))
	}
	return a
}

// spinQuantum is the burst length of one busy-wait poll iteration when a
// libmpk caller finds every hardware key in use.
const spinQuantum = 4_000

// libmpkAcquire activates (v, perm) for task under libmpk inside the
// simulator, reproducing libmpk's behaviour under contention: the global
// cache lock serializes key activations, and when every hardware key is
// held by some thread the caller burns spinQuantum-cycle bursts on its
// core until a key is released. The busy-wait cycles are recorded in the
// manager's stats.
func libmpkAcquire(sched *kernel.Sched, p *sim.Proc, lock *sim.Resource, m *libmpk.Manager, task *kernel.Task, v libmpk.Vkey, perm hw.Perm) cycles.Cost {
	var total cycles.Cost
	// Fast path: permission change on a resident key (or a revocation)
	// never takes the cache lock.
	if m.Mapped(v) || perm == hw.PermNone {
		var err error
		total += sched.Run(p, task, func() cycles.Cost {
			c, e := m.PkeySet(nil, task, v, perm)
			err = e
			return c
		})
		if err == nil {
			return total
		}
	}
	for {
		lock.Acquire(p, 1)
		var err error
		total += sched.Run(p, task, func() cycles.Cost {
			c, e := m.PkeySet(nil, task, v, perm)
			err = e
			return c
		})
		lock.Release(1)
		if err == nil {
			return total
		}
		// All keys held: spin one quantum and retry.
		m.Stats.BusyWaits++
		m.Stats.BusyWaitCycles += spinQuantum
		total += sched.Run(p, task, func() cycles.Cost { return spinQuantum })
	}
}

// epkDomains manages EPK's dynamic domain ids with a free list so that
// alloc/free-heavy workloads (httpd keys) reuse slots the way EPK's group
// allocator does.
type epkDomains struct {
	sys  *epk.System
	free []int
	next int
}

func newEPKDomains(sys *epk.System) *epkDomains {
	return &epkDomains{sys: sys}
}

func (d *epkDomains) alloc() int {
	if n := len(d.free); n > 0 {
		id := d.free[n-1]
		d.free = d.free[:n-1]
		return id
	}
	id := d.next
	d.next++
	return id
}

func (d *epkDomains) release(id int) { d.free = append(d.free, id) }
