package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vdom/internal/chaos"
	"vdom/internal/metrics"
	"vdom/internal/par"
	"vdom/internal/replay"
	"vdom/internal/scenario"
	"vdom/internal/workload"
)

// defaultTraceDir is the checked-in golden corpus.
const defaultTraceDir = "testdata/traces"

func (o Options) traceDir() string {
	if o.TraceDir != "" {
		return o.TraceDir
	}
	return defaultTraceDir
}

// Record re-records the golden trace corpus — one scaled-down run per
// paper workload and kernel kind — and writes each trace to
// Options.TraceDir in both the binary format (<name>.trace) and the
// diff-friendly JSONL form (<name>.jsonl). Recording fans out across the
// worker pool; files and the rendered table are emitted in corpus order,
// so output is byte-identical for every -parallel value.
func Record(w io.Writer, o Options) error {
	specs := append(workload.TraceCorpus(), scenario.TraceCorpus()...)
	type rec struct {
		name  string
		trace *replay.Trace
		bin   []byte
	}
	jobs := make([]func() rec, len(specs))
	for i, s := range specs {
		s := s
		jobs[i] = func() rec {
			t := s.Record()
			return rec{name: s.Name, trace: t, bin: replay.Encode(t)}
		}
	}
	cells := par.Map(o.workers(), jobs)

	dir := o.traceDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	t := &Table{
		Title:   fmt.Sprintf("Recorded domain-op traces (%s, %d workloads)", replay.FormatName, len(cells)),
		Columns: []string{"trace", "kernel", "events", "cycles", "bytes"},
	}
	for _, c := range cells {
		if err := os.WriteFile(filepath.Join(dir, c.name+".trace"), c.bin, 0o644); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, c.name+".jsonl"))
		if err != nil {
			return err
		}
		if err := replay.WriteJSONL(f, c.trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		t.Row(c.name, c.trace.Header.Kernel,
			fmt.Sprintf("%d", len(c.trace.Events)),
			fmt.Sprintf("%d", c.trace.End["clock"]),
			fmt.Sprintf("%d", len(c.bin)))
	}
	o.Render(w, t)
	return nil
}

// divergenceReport is one trace's entry in the JSON divergence report.
type divergenceReport struct {
	Trace      string             `json:"trace"`
	Kernel     string             `json:"kernel"`
	Workload   string             `json:"workload"`
	Error      string             `json:"error,omitempty"`
	Divergence *replay.Divergence `json:"divergence,omitempty"`
	Summary    string             `json:"summary,omitempty"`
}

// Replay re-executes every *.trace under Options.TraceDir against a
// freshly booted system and verifies each run is bit-identical to its
// recording: same per-event costs, ids, and error outcomes, same final
// cycle clock and end state. Chaos-soak traces get their fault injector
// rebuilt from the trace header. Cells fan out across the worker pool
// with private metrics/trace sinks merged in file order, so output is
// byte-identical for every -parallel value. It returns the number of
// traces that diverged or failed.
func Replay(w io.Writer, o Options) (int, error) {
	dir := o.traceDir()
	paths, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return 0, fmt.Errorf("no *.trace files under %s (run `vdom-bench record` first)", dir)
	}

	type cellR struct {
		name string
		hdr  replay.Header
		res  *replay.Result
		err  error
		reg  *metrics.Registry
		tr   *metrics.Trace
	}
	jobs := make([]func() cellR, len(paths))
	for i, path := range paths {
		path := path
		jobs[i] = func() cellR {
			c := cellR{name: trimTraceExt(path)}
			data, err := os.ReadFile(path)
			if err != nil {
				c.err = err
				return c
			}
			t, err := replay.Decode(data)
			if err != nil {
				c.err = err
				return c
			}
			c.hdr = t.Header
			c.reg, c.tr = o.newCellSinks()
			opt := replay.Options{Metrics: c.reg, Trace: c.tr}
			switch {
			case t.Header.Workload == chaos.SoakWorkload:
				c.res, c.err = chaos.ReplayTrace(t, opt)
			case strings.HasPrefix(t.Header.Workload, scenario.WorkloadPrefix):
				c.res, c.err = scenario.ReplayTrace(t, opt)
			default:
				c.res, c.err = replay.Run(t, opt)
			}
			return c
		}
	}
	cells := par.Map(o.workers(), jobs)

	t := &Table{
		Title:   fmt.Sprintf("Trace replay: %d traces from %s", len(cells), dir),
		Columns: []string{"trace", "kernel", "events", "cycles", "cyc/event", "verdict"},
	}
	var reports []divergenceReport
	bad := 0
	for _, c := range cells {
		rep := divergenceReport{Trace: c.name, Kernel: c.hdr.Kernel, Workload: c.hdr.Workload}
		switch {
		case c.err != nil:
			bad++
			rep.Error = c.err.Error()
			t.Row(c.name, c.hdr.Kernel, "-", "-", "-", "ERROR")
		case c.res.Divergence != nil:
			bad++
			rep.Divergence = c.res.Divergence
			rep.Summary = c.res.Divergence.String()
			t.Row(c.name, c.hdr.Kernel,
				fmt.Sprintf("%d", c.res.Events),
				fmt.Sprintf("%d", c.res.Cycles),
				perEvent(c.res), "DIVERGED")
		default:
			t.Row(c.name, c.hdr.Kernel,
				fmt.Sprintf("%d", c.res.Events),
				fmt.Sprintf("%d", c.res.Cycles),
				perEvent(c.res), "ok")
		}
		if rep.Error != "" || rep.Divergence != nil {
			reports = append(reports, rep)
		}
		if c.res != nil {
			o.Metrics.Add("bench/total-cycles", c.res.Cycles)
		}
		o.Metrics.Merge(c.reg)
		o.Trace.Append(c.tr)
	}
	o.Render(w, t)
	if bad == 0 {
		fmt.Fprintf(w, "\nverdict: BIT-IDENTICAL — every trace replayed to its recorded cycles, events, and end state\n")
	} else {
		fmt.Fprintf(w, "\nverdict: %d of %d traces DIVERGED\n", bad, len(cells))
		for _, r := range reports {
			if r.Summary != "" {
				fmt.Fprintf(w, "  %s: %s\n", r.Trace, r.Summary)
			} else {
				fmt.Fprintf(w, "  %s: %s\n", r.Trace, r.Error)
			}
		}
	}

	if o.DivergenceOut != "" {
		if reports == nil {
			reports = []divergenceReport{}
		}
		f, err := os.Create(o.DivergenceOut)
		if err != nil {
			return bad, err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			f.Close()
			return bad, err
		}
		if err := f.Close(); err != nil {
			return bad, err
		}
	}
	return bad, nil
}

// perEvent renders the replayed cycles-per-event throughput figure.
func perEvent(r *replay.Result) string {
	if r.Events == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(r.Cycles)/float64(r.Events))
}

// trimTraceExt maps "dir/name.trace" to "name".
func trimTraceExt(path string) string {
	base := filepath.Base(path)
	return base[:len(base)-len(".trace")]
}
