package tlb

// Checkpoint capture and restore (vdom-snap/v1). A TLB snapshot keeps
// the exact slot layout — valid holes, reference bits, and the clock
// hand(s) — so that victim selection, and therefore every future
// hit/miss, is bit-identical after restore.

// SlotState is one TLB slot, valid or not.
type SlotState struct {
	Entry      Entry
	Valid      bool
	Referenced bool
}

// CacheState is the serializable image of a Cache. For the fully
// associative TLB, Slots has one element per slot (length == capacity)
// and Hand is the clock hand; for the set-associative organization the
// slots are flattened set-major (set*ways+way) and Hands holds the
// per-set clock hands.
type CacheState struct {
	Slots []SlotState
	Hand  int
	Hands []int
	Stats Stats
}

// State captures the TLB's image.
func (t *TLB) State() CacheState {
	st := CacheState{
		Slots: make([]SlotState, t.capacity),
		Hand:  t.hand,
		Stats: t.stats,
	}
	for i, s := range t.slots {
		st.Slots[i] = SlotState{Entry: s.entry, Valid: s.valid, Referenced: s.referenced}
	}
	return st
}

// LoadState overwrites the TLB in place with a captured image. The
// capacity must match the image's slot count. The lookup memo restores
// to the unset state, which is behaviorally transparent (its hit path
// has the exact side effects of an indexed hit).
func (t *TLB) LoadState(st CacheState) {
	if len(st.Slots) != t.capacity {
		panic("tlb: LoadState capacity mismatch")
	}
	if len(t.slots) < t.capacity {
		t.slots = make([]slot, t.capacity)
	}
	t.index = make(map[key]int, t.capacity)
	clear(t.counts)
	for i, s := range st.Slots {
		t.slots[i] = slot{entry: s.Entry, valid: s.Valid, referenced: s.Referenced}
		if s.Valid {
			t.index[key{s.Entry.ASID, s.Entry.VPN}] = i
			t.bump(s.Entry.ASID, 1)
		}
	}
	t.hand = st.Hand
	t.stats = st.Stats
	t.lastIdx = -1
}

// State captures the set-associative TLB's image, slots flattened
// set-major.
func (t *SetAssoc) State() CacheState {
	st := CacheState{
		Slots: make([]SlotState, 0, t.Capacity()),
		Hands: append([]int(nil), t.hands...),
		Stats: t.stats,
	}
	for s := range t.sets {
		for _, sl := range t.sets[s] {
			st.Slots = append(st.Slots, SlotState{Entry: sl.entry, Valid: sl.valid, Referenced: sl.referenced})
		}
	}
	return st
}

// LoadState overwrites the set-associative TLB in place with a captured
// image. The geometry (sets × ways) must match the image.
func (t *SetAssoc) LoadState(st CacheState) {
	if len(st.Slots) != t.Capacity() || len(st.Hands) != len(t.sets) {
		panic("tlb: LoadState geometry mismatch")
	}
	t.index = make(map[key]int, t.Capacity())
	for i, s := range st.Slots {
		sl := &t.sets[i/t.ways][i%t.ways]
		*sl = slot{entry: s.Entry, valid: s.Valid, referenced: s.Referenced}
		if s.Valid {
			t.index[key{s.Entry.ASID, s.Entry.VPN}] = i
		}
	}
	copy(t.hands, st.Hands)
	t.stats = st.Stats
}
