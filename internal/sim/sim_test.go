package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestDelayAdvancesClock(t *testing.T) {
	env := NewEnv()
	var sawAt Time
	env.Go("a", func(p *Proc) {
		p.Delay(100)
		sawAt = p.Now()
	})
	end := env.Run()
	if sawAt != 100 {
		t.Errorf("process observed time %d after Delay(100), want 100", sawAt)
	}
	if end != 100 {
		t.Errorf("Run returned %d, want 100", end)
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Go("a", func(p *Proc) {
		p.Delay(10)
		order = append(order, "a10")
		p.Delay(20) // at 30
		order = append(order, "a30")
	})
	env.Go("b", func(p *Proc) {
		p.Delay(20)
		order = append(order, "b20")
		p.Delay(20) // at 40
		order = append(order, "b40")
	})
	env.Run()
	want := []string{"a10", "b20", "a30", "b40"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameTimeEventsRunInSpawnOrder(t *testing.T) {
	env := NewEnv()
	var order []string
	for _, name := range []string{"p1", "p2", "p3"} {
		name := name
		env.Go(name, func(p *Proc) {
			p.Delay(5)
			order = append(order, name)
		})
	}
	env.Run()
	for i, want := range []string{"p1", "p2", "p3"} {
		if order[i] != want {
			t.Fatalf("order = %v, want spawn order", order)
		}
	}
}

func TestGoAtStartsLater(t *testing.T) {
	env := NewEnv()
	var at Time
	env.GoAt(500, "late", func(p *Proc) {
		at = p.Now()
	})
	env.Run()
	if at != 500 {
		t.Errorf("late process started at %d, want 500", at)
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	env := NewEnv()
	mu := env.NewResource(1)
	var inside, maxInside int
	for i := 0; i < 4; i++ {
		env.Go("worker", func(p *Proc) {
			mu.Acquire(p, 1)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Delay(10)
			inside--
			mu.Release(1)
		})
	}
	end := env.Run()
	if maxInside != 1 {
		t.Errorf("max concurrent holders = %d, want 1", maxInside)
	}
	if end != 40 {
		t.Errorf("4 serialized 10-cycle sections finished at %d, want 40", end)
	}
}

func TestResourceWaitedCyclesAccumulate(t *testing.T) {
	env := NewEnv()
	mu := env.NewResource(1)
	var waits []uint64
	for i := 0; i < 3; i++ {
		env.Go("w", func(p *Proc) {
			w := mu.Acquire(p, 1)
			waits = append(waits, w)
			p.Delay(100)
			mu.Release(1)
		})
	}
	env.Run()
	// First waits 0, second 100, third 200.
	wantTotal := uint64(300)
	if mu.WaitedCycles != wantTotal {
		t.Errorf("WaitedCycles = %d, want %d", mu.WaitedCycles, wantTotal)
	}
	if waits[0] != 0 || waits[1] != 100 || waits[2] != 200 {
		t.Errorf("per-acquire waits = %v, want [0 100 200]", waits)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	env := NewEnv()
	mu := env.NewResource(1)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		env.Go("w", func(p *Proc) {
			p.Delay(uint64(i)) // stagger arrival: 0,1,2,3,4
			mu.Acquire(p, 1)
			got = append(got, i)
			p.Delay(50)
			mu.Release(1)
		})
	}
	env.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("acquisition order %v, want FIFO arrival order", got)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	env := NewEnv()
	r := env.NewResource(2)
	env.Go("a", func(p *Proc) {
		if !r.TryAcquire(2) {
			t.Error("TryAcquire(2) on empty resource failed")
		}
		if r.TryAcquire(1) {
			t.Error("TryAcquire(1) on full resource succeeded")
		}
		r.Release(2)
		if !r.TryAcquire(1) {
			t.Error("TryAcquire(1) after release failed")
		}
		r.Release(1)
	})
	env.Run()
}

func TestCountingResourceCapacity(t *testing.T) {
	env := NewEnv()
	r := env.NewResource(3)
	var inside, maxInside int
	for i := 0; i < 9; i++ {
		env.Go("w", func(p *Proc) {
			r.Acquire(p, 1)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Delay(10)
			inside--
			r.Release(1)
		})
	}
	end := env.Run()
	if maxInside != 3 {
		t.Errorf("max concurrency = %d, want 3", maxInside)
	}
	if end != 30 {
		t.Errorf("9 tasks × 10 cycles at width 3 finished at %d, want 30", end)
	}
}

func TestSignalBroadcast(t *testing.T) {
	env := NewEnv()
	s := env.NewSignal()
	woken := 0
	for i := 0; i < 3; i++ {
		env.Go("sleeper", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	env.Go("waker", func(p *Proc) {
		p.Delay(100)
		if s.NumWaiting() != 3 {
			t.Errorf("NumWaiting = %d, want 3", s.NumWaiting())
		}
		s.Broadcast()
	})
	env.Run()
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

func TestSignalWaitReportsDuration(t *testing.T) {
	env := NewEnv()
	s := env.NewSignal()
	var waited uint64
	env.Go("sleeper", func(p *Proc) {
		waited = s.Wait(p)
	})
	env.Go("waker", func(p *Proc) {
		p.Delay(250)
		s.Broadcast()
	})
	env.Run()
	if waited != 250 {
		t.Errorf("waited = %d, want 250", waited)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Error("Run did not panic on deadlock")
			return
		}
		// The panic value is a typed error so supervisors can classify
		// the failure without string matching.
		err, ok := v.(error)
		if !ok {
			t.Fatalf("panic value is %T, want error", v)
		}
		if !errors.Is(err, ErrDeadlock) {
			t.Errorf("panic error %v does not wrap ErrDeadlock", err)
		}
	}()
	env := NewEnv()
	mu := env.NewResource(1)
	env.Go("hog", func(p *Proc) {
		mu.Acquire(p, 1)
		// never released
	})
	env.Go("victim", func(p *Proc) {
		mu.Acquire(p, 1)
	})
	env.Run()
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (Time, uint64) {
		env := NewEnv()
		rng := NewRand(42)
		mu := env.NewResource(2)
		var acc uint64
		for i := 0; i < 8; i++ {
			env.Go("w", func(p *Proc) {
				for j := 0; j < 20; j++ {
					mu.Acquire(p, 1)
					d := uint64(rng.Intn(50) + 1)
					p.Delay(d)
					acc += d
					mu.Release(1)
				}
			})
		}
		return env.Run(), acc
	}
	t1, a1 := run()
	t2, a2 := run()
	if t1 != t2 || a1 != a2 {
		t.Errorf("replay diverged: (%d,%d) vs (%d,%d)", t1, a1, t2, a2)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(8)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(7).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		v := NewRand(seed).Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRandFloat64Bounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		f := NewRand(seed).Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		m := int(n % 64)
		p := NewRand(seed).Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestGoAtInPastPanics(t *testing.T) {
	env := NewEnv()
	env.Go("a", func(p *Proc) {
		p.Delay(100)
		defer func() {
			if recover() == nil {
				t.Error("GoAt in the past did not panic")
			}
		}()
		env.GoAt(50, "past", func(p *Proc) {})
	})
	env.Run()
}

func TestNestedSpawn(t *testing.T) {
	env := NewEnv()
	var childTime Time
	env.Go("parent", func(p *Proc) {
		p.Delay(10)
		env.Go("child", func(c *Proc) {
			c.Delay(5)
			childTime = c.Now()
		})
		p.Delay(100)
	})
	env.Run()
	if childTime != 15 {
		t.Errorf("child observed %d, want 15", childTime)
	}
}
