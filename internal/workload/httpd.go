package workload

import (
	"fmt"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/epk"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
	"vdom/internal/sim"
)

// HttpdConfig describes one httpd+OpenSSL run (Figures 1 and 5): an Apache
// event-model worker with a pool of threads serving HTTPS requests, where
// every request performs an ECDHE-RSA handshake whose private-key
// structures live in per-key 4 KiB protection domains.
type HttpdConfig struct {
	Arch    cycles.Arch
	System  System
	Clients int
	// RequestsPerClient defaults to 50 (the paper uses 10,000; the
	// simulated run is scaled down, which does not change steady-state
	// per-request behaviour).
	RequestsPerClient int
	// FileBytes is the response size (1 KiB, 16 KiB, 64 KiB, 128 KiB).
	FileBytes uint64
	// Workers is the server thread-pool size (paper: 40; Figure 1: 25).
	Workers int
	// Cores defaults to the platform's hardware-thread count.
	Cores int
	// KeysPerRequest is how many private-key structures each request
	// allocates and protects (the paper observes ≈2).
	KeysPerRequest int
	// LibmpkMode selects the baseline's page backing.
	LibmpkMode libmpk.PageMode
	// KeepAlive reuses one connection per client (ab -k): the TLS
	// handshake and its key domains amortize over RequestsPerClient
	// transfers. An extension beyond the paper's per-request
	// connections.
	KeepAlive bool
	Seed      uint64

	// Trace, when non-nil, receives the discrete-event simulator's
	// timeline — one Chrome-trace span per scheduled burst of every sim
	// process (workers, clients), timestamped on virtual time — for
	// inspection in Perfetto (see OBSERVABILITY.md).
	Trace *metrics.Trace
	// Record, when non-nil, captures the run's domain-op stream
	// (internal/replay).
	Record *replay.Recorder
}

func (c *HttpdConfig) defaults() {
	if c.RequestsPerClient == 0 {
		c.RequestsPerClient = 50
	}
	if c.Workers == 0 {
		c.Workers = 40
	}
	if c.Cores == 0 {
		c.Cores = DefaultCores(c.Arch)
	}
	if c.KeysPerRequest == 0 {
		c.KeysPerRequest = 2
	}
	if c.FileBytes == 0 {
		c.FileBytes = 1024
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
}

// HttpdResult is one run's outcome.
type HttpdResult struct {
	Config    HttpdConfig
	Requests  int
	Makespan  sim.Time
	ReqPerSec float64
	// LibmpkStats is populated when System == Libmpk (Figure 1).
	LibmpkStats libmpk.Stats
	// VDomStats is populated when System == VDom.
	VDomStats core.Stats
	// WorkerBusyCycles is the sum of on-core cycles across workers.
	WorkerBusyCycles uint64
}

// httpdCosts is the per-architecture request cost model, calibrated to the
// paper's absolute throughputs (≈1.3×10⁴ req/s on the Xeon, ≈250 on the
// Pi, for 1 KiB responses at saturation).
type httpdCosts struct {
	// signUser is the RSA private-key operation, executed with the
	// certificate key's domain open.
	signUser cycles.Cost
	// handshakeUser is the rest of the user-space handshake work.
	handshakeUser cycles.Cost
	// kernBase is per-request kernel work (accept, TCP/TLS records,
	// close) independent of the body size.
	kernBase cycles.Cost
	// userPerByte / kernPerByte scale with the response body.
	userPerByte float64
	kernPerByte float64
}

func httpdCostsFor(arch cycles.Arch) httpdCosts {
	if arch == cycles.ARM {
		return httpdCosts{
			signUser:      7_000_000,
			handshakeUser: 6_000_000,
			kernBase:      4_000_000,
			userPerByte:   8,
			kernPerByte:   6,
		}
	}
	return httpdCosts{
		signUser:      4_300_000,
		handshakeUser: 200_000,
		kernBase:      1_200_000,
		userPerByte:   1.2,
		kernPerByte:   3.0,
	}
}

// RunHttpd executes one httpd configuration and reports throughput.
func RunHttpd(cfg HttpdConfig) HttpdResult {
	cfg.defaults()
	pl := newPlatform(cfg.Arch, cfg.Cores, cfg.System == VDom || cfg.System == VDomLowerbound, cfg.Seed)
	if cfg.Trace != nil {
		pl.env.SetTracer(cfg.Trace)
	}
	costs := httpdCostsFor(cfg.Arch)

	active := cfg.Workers
	if cfg.Clients < active {
		active = cfg.Clients
	}
	totalRequests := cfg.Clients * cfg.RequestsPerClient

	var (
		mgr     *core.Manager
		lbm     *libmpk.Manager
		lbmLock *sim.Resource
		esys    *epk.System
		edoms   *epkDomains
		lowDom  core.VdomID
		lowBase pagetable.VAddr
	)
	switch cfg.System {
	case VDom, VDomLowerbound:
		mgr = core.Attach(pl.proc, core.DefaultPolicy())
	case Libmpk:
		lbm = libmpk.Attach(pl.proc, nil)
		lbm.SetPageMode(cfg.LibmpkMode)
		lbmLock = pl.env.NewResource(1)
	case EPK:
		esys = epk.New(epk.KeysPerEPT*5, epk.DefaultVMTax())
		edoms = newEPKDomains(esys)
	}
	if rec := cfg.Record; rec != nil {
		rec.AttachKernel(pl.kernel)
		if mgr != nil {
			rec.AttachManager(mgr)
		}
		if lbm != nil {
			rec.AttachLibmpk(lbm)
		}
		if esys != nil {
			rec.AttachEPK(esys)
		}
	}

	// Spawn workers, round-robin over cores.
	type worker struct {
		task *kernel.Task
		id   int
	}
	workers := make([]*worker, active)
	for i := range workers {
		workers[i] = &worker{task: pl.proc.NewTask(i % cfg.Cores), id: i}
		if cfg.Record != nil {
			cfg.Record.Spawn(workers[i].task)
		}
	}
	if cfg.System == VDom || cfg.System == VDomLowerbound {
		for _, w := range workers {
			if _, err := mgr.VdrAlloc(w.task, 0); err != nil {
				panic(fmt.Sprintf("httpd: vdr_alloc: %v", err))
			}
		}
		if cfg.System == VDomLowerbound {
			lowDom, _ = mgr.AllocVdom(true)
			// One shared region stands in for all key structures.
			lowBase = pl.mustAlloc(workers[0].task, pagetable.PageSize*64)
			if _, err := mgr.Mprotect(workers[0].task, lowBase, pagetable.PageSize*64, lowDom); err != nil {
				panic(err)
			}
		}
	}

	var busy uint64
	remaining := totalRequests
	// Per-request split of body-independent work between the two main
	// bursts.
	userBytes := cycles.Cost(float64(cfg.FileBytes) * costs.userPerByte)
	kernBytes := cycles.Cost(float64(cfg.FileBytes) * costs.kernPerByte)

	for _, w := range workers {
		w := w
		share := remaining / (active - w.id)
		remaining -= share
		pl.env.Go(fmt.Sprintf("httpd-worker-%d", w.id), func(p *sim.Proc) {
			if cfg.KeepAlive {
				// One connection, `share` transfers on it.
				busy += uint64(serveConnection(pl, cfg, costs, w.task, w.id, p,
					mgr, lbm, lbmLock, esys, edoms, lowDom, lowBase, userBytes, kernBytes, share))
				return
			}
			for r := 0; r < share; r++ {
				busy += uint64(serveConnection(pl, cfg, costs, w.task, w.id, p,
					mgr, lbm, lbmLock, esys, edoms, lowDom, lowBase, userBytes, kernBytes, 1))
			}
		})
	}
	makespan := pl.env.Run()

	res := HttpdResult{
		Config:           cfg,
		Requests:         totalRequests,
		Makespan:         makespan,
		WorkerBusyCycles: busy,
	}
	if makespan > 0 {
		res.ReqPerSec = float64(totalRequests) / (float64(makespan) / ClockHz(cfg.Arch))
	}
	if lbm != nil {
		res.LibmpkStats = lbm.Stats
		res.LibmpkStats.BusyWaitCycles += lbmLock.WaitedCycles
	}
	if mgr != nil {
		res.VDomStats = mgr.Stats
	}
	return res
}

// serveConnection models one HTTPS connection carrying `transfers`
// requests:
//
//	accept + handshake (kern/user) → RSA sign with the certificate key's
//	domain open → `transfers` response transfers with the session key's
//	domain open around each → teardown, freeing both per-connection key
//	domains. transfers == 1 is the paper's ab configuration; larger values
//	model keep-alive.
func serveConnection(pl *platform, cfg HttpdConfig, costs httpdCosts, task *kernel.Task, tid int, p *sim.Proc,
	mgr *core.Manager, lbm *libmpk.Manager, lbmLock *sim.Resource, esys *epk.System, edoms *epkDomains,
	lowDom core.VdomID, lowBase pagetable.VAddr, userBytes, kernBytes cycles.Cost, transfers int) cycles.Cost {

	var total cycles.Cost
	run := func(body func() cycles.Cost) {
		total += pl.sched.Run(p, task, body)
	}
	inVM := cfg.System == EPK
	work := func(user, kern cycles.Cost) cycles.Cost {
		if inVM {
			return esys.WorkInVM(user, kern)
		}
		return user + kern
	}

	type key struct {
		vdom  core.VdomID
		vkey  libmpk.Vkey
		edom  int
		addr  pagetable.VAddr
		bytes uint64
	}
	newKey := func() *key {
		k := &key{bytes: pagetable.PageSize}
		switch cfg.System {
		case VDom:
			run(func() cycles.Cost {
				addr, err := pl.alloc(task, k.bytes)
				if err != nil {
					panic(err)
				}
				k.addr = addr
				d, c := mgr.AllocVdom(false)
				k.vdom = d
				c2, err := mgr.Mprotect(task, addr, k.bytes, d)
				if err != nil {
					panic(err)
				}
				return c + c2
			})
		case VDomLowerbound:
			k.vdom = lowDom
			k.addr = lowBase + pagetable.VAddr((tid%64)*pagetable.PageSize)
		case Libmpk:
			run(func() cycles.Cost {
				addr, err := pl.alloc(task, k.bytes)
				if err != nil {
					panic(err)
				}
				k.addr = addr
				v, c := lbm.PkeyAlloc()
				k.vkey = v
				c2, err := lbm.PkeyMprotect(nil, task, addr, k.bytes, v)
				if err != nil {
					panic(err)
				}
				return c + c2
			})
		case EPK:
			k.edom = edoms.alloc()
		}
		return k
	}
	open := func(k *key) {
		switch cfg.System {
		case VDom, VDomLowerbound:
			run(func() cycles.Cost {
				c, err := mgr.WrVdr(task, k.vdom, core.VPermReadWrite)
				if err != nil {
					panic(err)
				}
				// Touch the key structure.
				c2, err := task.Access(k.addr, true)
				if err != nil {
					panic(err)
				}
				return c + c2
			})
		case Libmpk:
			total += libmpkAcquire(pl.sched, p, lbmLock, lbm, task, k.vkey, hw.PermReadWrite)
			run(func() cycles.Cost {
				c, err := task.Access(k.addr, true)
				if err != nil {
					panic(err)
				}
				return c
			})
		case EPK:
			run(func() cycles.Cost { return esys.Switch(tid, k.edom) })
		}
	}
	closeKey := func(k *key) {
		switch cfg.System {
		case VDom, VDomLowerbound:
			run(func() cycles.Cost {
				c, err := mgr.WrVdr(task, k.vdom, core.VPermNone)
				if err != nil {
					panic(err)
				}
				return c
			})
		case Libmpk:
			run(func() cycles.Cost {
				c, err := lbm.PkeySet(nil, task, k.vkey, hw.PermNone)
				if err != nil {
					panic(err)
				}
				return c
			})
		case EPK:
			run(func() cycles.Cost { return cycles.Cost(epk.MPKSwitchCycles) })
		}
	}
	freeKey := func(k *key) {
		switch cfg.System {
		case VDom:
			run(func() cycles.Cost {
				c, err := mgr.FreeVdom(k.vdom)
				if err != nil {
					panic(err)
				}
				c2, err := task.Munmap(k.addr, k.bytes)
				if err != nil {
					panic(err)
				}
				return c + c2
			})
		case Libmpk:
			run(func() cycles.Cost {
				c, err := lbm.PkeyFree(task, k.vkey)
				if err != nil {
					panic(err)
				}
				c2, err := task.Munmap(k.addr, k.bytes)
				if err != nil {
					panic(err)
				}
				return c + c2
			})
		case EPK:
			edoms.release(k.edom)
		}
	}

	// Burst 1: accept + handshake prologue.
	run(func() cycles.Cost { return work(costs.handshakeUser, costs.kernBase/2) })

	// Certificate key: open across the RSA sign.
	certKeys := make([]*key, 0, cfg.KeysPerRequest-1)
	for i := 0; i < cfg.KeysPerRequest-1; i++ {
		certKeys = append(certKeys, newKey())
	}
	for _, k := range certKeys {
		open(k)
	}
	run(func() cycles.Cost { return work(costs.signUser, 0) })
	for _, k := range certKeys {
		closeKey(k)
		freeKey(k)
	}

	// Session key: opened around each response transfer.
	sess := newKey()
	for r := 0; r < transfers; r++ {
		open(sess)
		run(func() cycles.Cost { return work(userBytes, costs.kernBase/2+kernBytes) })
		closeKey(sess)
	}
	freeKey(sess)
	return total
}
