package kernel_test

import (
	"testing"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
	"vdom/internal/sim"
	"vdom/internal/snapshot"
	"vdom/internal/tlb"
)

const pg = pagetable.PageSize

// bootVDom builds a machine + VDom kernel + process + manager for
// scheduler tests that need the core layer (which the in-package kernel
// tests cannot import).
func bootVDom(t *testing.T, cores int) (*kernel.Kernel, *kernel.Process, *core.Manager) {
	t.Helper()
	m := hw.NewMachine(hw.Config{Arch: cycles.X86, NumCores: cores, TLBCapacity: 256})
	k := kernel.New(kernel.Config{Machine: m, VDomEnabled: true})
	p := k.NewProcess()
	return k, p, core.Attach(p, core.DefaultPolicy())
}

// TestSchedThreadExitWhileResident exercises a thread releasing its VDR
// — leaving its VDS — while it is still the task resident on its core:
// the next dispatch of another thread, and a later re-dispatch of the
// exited thread against the base address space, must both work, and the
// emptied VDS must be reapable.
func TestSchedThreadExitWhileResident(t *testing.T) {
	k, p, mgr := bootVDom(t, 1)
	env := sim.NewEnv()
	sched := kernel.NewSched(env, k)

	t1 := p.NewTask(0)
	t2 := p.NewTask(0)
	const plain = pagetable.VAddr(0x10_0000)
	if _, err := t1.Mmap(plain, 4*pg, true); err != nil {
		t.Fatal(err)
	}
	const guarded = pagetable.VAddr(0x20_0000)
	if _, err := t1.Mmap(guarded, 4*pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.VdrAlloc(t1, 2); err != nil {
		t.Fatal(err)
	}
	// Move t1 out of the process's home VDS, so its exit empties a
	// reclaimable one.
	if _, err := mgr.PlaceInNewVDS(t1); err != nil {
		t.Fatal(err)
	}
	if got := len(mgr.VDSes()); got != 2 {
		t.Fatalf("expected 2 VDSes after the spread, have %d", got)
	}
	d, _ := mgr.AllocVdom(false)
	if _, err := mgr.Mprotect(t1, guarded, 4*pg, d); err != nil {
		t.Fatal(err)
	}

	env.Go("t1", func(proc *sim.Proc) {
		// Open the domain and touch it, so t1 is resident in its VDS and
		// is the core's last-dispatched task...
		sched.Run(proc, t1, func() cycles.Cost {
			c, err := mgr.WrVdr(t1, d, core.VPermReadWrite)
			if err != nil {
				t.Errorf("wrvdr: %v", err)
			}
			a, err := t1.Access(guarded, true)
			if err != nil {
				t.Errorf("guarded access: %v", err)
			}
			return c + a
		})
		// ... then exit: the VDR is released while t1 is still resident.
		sched.Run(proc, t1, func() cycles.Cost {
			c, err := mgr.VdrFree(t1)
			if err != nil {
				t.Errorf("vdr_free: %v", err)
			}
			return c
		})
	})
	env.Go("t2", func(proc *sim.Proc) {
		sched.Run(proc, t2, func() cycles.Cost {
			c, err := t2.Access(plain, false)
			if err != nil {
				t.Errorf("t2 access after t1 exit: %v", err)
			}
			return c
		})
	})
	env.Run()

	if got := mgr.VDROf(t1); got != nil {
		t.Fatalf("t1 still has a VDR after exit: %v", got)
	}
	// VdrFree reaps on the way out: only the home VDS remains.
	if got := len(mgr.VDSes()); got != 1 {
		t.Fatalf("the VDS t1 exited from was not reclaimed: %d VDSes remain", got)
	}
	// The exited thread can still run plain bursts on the base address
	// space.
	env2 := sim.NewEnv()
	sched2 := kernel.NewSched(env2, k)
	env2.Go("t1-again", func(proc *sim.Proc) {
		sched2.Run(proc, t1, func() cycles.Cost {
			c, err := t1.Access(plain, true)
			if err != nil {
				t.Errorf("t1 access after its VDS was reaped: %v", err)
			}
			return c
		})
	})
	env2.Run()
}

// TestSchedVDSSwitchUnderContention pins two threads, each in its own
// VDS, onto one capacity-1 core: their bursts serialize (queue wait
// accrues) and every alternation forces the dispatcher to reload the
// other thread's address space, so VDS/pgd switches accumulate.
func TestSchedVDSSwitchUnderContention(t *testing.T) {
	k, p, mgr := bootVDom(t, 1)
	env := sim.NewEnv()
	sched := kernel.NewSched(env, k)

	const rounds = 6
	tasks := make([]*kernel.Task, 2)
	doms := make([]core.VdomID, 2)
	for i := range tasks {
		tasks[i] = p.NewTask(0)
		base := pagetable.VAddr(0x40_0000 + uint64(i)*0x10_0000)
		if _, err := tasks[i].Mmap(base, 4*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.VdrAlloc(tasks[i], 1); err != nil {
			t.Fatal(err)
		}
		doms[i], _ = mgr.AllocVdom(false)
		if _, err := mgr.Mprotect(tasks[i], base, 4*pg, doms[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Separate the threads into distinct VDSes so re-dispatch means a
	// full address-space change, not just a permission update.
	if _, err := mgr.PlaceInNewVDS(tasks[1]); err != nil {
		t.Fatal(err)
	}

	var busy [2]cycles.Cost
	for i := range tasks {
		i := i
		tk := tasks[i]
		base := pagetable.VAddr(0x40_0000 + uint64(i)*0x10_0000)
		env.Go([]string{"a", "b"}[i], func(proc *sim.Proc) {
			for r := 0; r < rounds; r++ {
				busy[i] += sched.Run(proc, tk, func() cycles.Cost {
					c, err := mgr.WrVdr(tk, doms[i], core.VPermReadWrite)
					if err != nil {
						t.Errorf("wrvdr: %v", err)
					}
					a, err := tk.Access(base, true)
					if err != nil {
						t.Errorf("access: %v", err)
					}
					c2, err := mgr.WrVdr(tk, doms[i], core.VPermNone)
					if err != nil {
						t.Errorf("wrvdr close: %v", err)
					}
					return c + a + c2
				})
			}
		})
	}
	makespan := env.Run()

	if sched.QueueWait(0) == 0 {
		t.Error("two threads on one core accrued no queue wait")
	}
	if got := mgr.Stats.VDSSwitches; got == 0 {
		t.Error("alternating threads in distinct VDSes recorded no VDS switches")
	}
	// One core serializes everything: the makespan is exactly the busy
	// cycles, queueing excluded.
	if want := uint64(busy[0] + busy[1]); uint64(makespan) != want {
		t.Errorf("makespan %d != total on-core cycles %d", makespan, want)
	}
	if cur := k.CurrentOn(0); cur != tasks[0] && cur != tasks[1] {
		t.Errorf("core 0 resident task is %v", cur)
	}
}

// snapHeader describes the bootVDom geometry to the snapshot layer, so
// Restore boots an identical system.
func snapHeader(cores int) replay.Header {
	pol := core.DefaultPolicy()
	h := replay.Header{
		Version: replay.FormatVersion, Kernel: replay.KernelVDom,
		Arch: "x86", Cores: cores, TLBCap: 256, Workload: "sched-test",
		Flags:          replay.HdrVDomKernel,
		FlushThreshold: pol.RangeFlushThresholdPages,
		Nas:            pol.DefaultNas,
	}
	if pol.SecureGate {
		h.Flags |= replay.HdrSecureGate
	}
	return h
}

// checkpoint round-trips the live system through the vdom-snap/v1
// container and restores it into a fresh System.
func checkpoint(t *testing.T, k *kernel.Kernel, p *kernel.Process, mgr *core.Manager) (*replay.System, map[uint64]*kernel.Task) {
	t.Helper()
	sys := &replay.System{Machine: k.Machine(), Kernel: k, Proc: p, Manager: mgr}
	st, err := snapshot.Capture(sys, snapHeader(k.Machine().NumCores()), 0, 0)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	st2, err := snapshot.Decode(snapshot.Encode(st))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	sys2, tasks, err := snapshot.Restore(st2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return sys2, tasks
}

// churnASID burns one ASID: it moves the task into a brand-new VDS
// (fresh ASID draw) and reaps the VDS it vacated.
func churnASID(t *testing.T, mgr *core.Manager, tk *kernel.Task) {
	t.Helper()
	if _, err := mgr.PlaceInNewVDS(tk); err != nil {
		t.Fatalf("place in new VDS: %v", err)
	}
	mgr.ReapVDSes()
}

// TestSchedASIDRolloverAcrossCheckpoint drives the ASID allocator to the
// brink of a generation rollover, checkpoints, and verifies the restored
// kernel rolls over at exactly the same allocation as the live one: the
// shrunken ASID limit, the next-ASID cursor, and the generation counters
// all survive the checkpoint/restore boundary.
func TestSchedASIDRolloverAcrossCheckpoint(t *testing.T) {
	const limit = tlb.ASID(6)
	boot := func() (*kernel.Kernel, *core.Manager, *kernel.Task) {
		k, p, mgr := bootVDom(t, 1)
		k.SetASIDLimit(limit)
		tk := p.NewTask(0)
		if _, err := tk.Mmap(0x50_0000, 4*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.VdrAlloc(tk, 2); err != nil {
			t.Fatal(err)
		}
		return k, mgr, tk
	}

	// Probe run: learn how many VDS churns the first rollover takes.
	// The machine is deterministic, so a second boot replays exactly.
	pk, pmgr, ptk := boot()
	churns := 0
	for pk.ASIDRollovers() == 0 {
		churnASID(t, pmgr, ptk)
		churns++
		if churns > 1000 {
			t.Fatalf("no ASID rollover after %d churns at limit %d", churns, limit)
		}
	}

	// Real run: stop one churn short of the rollover and checkpoint there.
	k, mgr, tk := boot()
	p := tk.Process()
	for i := 0; i < churns-1; i++ {
		churnASID(t, mgr, tk)
	}
	if got := k.ASIDRollovers(); got != 0 {
		t.Fatalf("rolled over before the checkpoint: %d rollovers", got)
	}
	sys2, tasks2 := checkpoint(t, k, p, mgr)
	k2 := sys2.Kernel
	tk2 := tasks2[uint64(tk.TID())]
	if tk2 == nil {
		t.Fatalf("restored system lost task %d; have %v", tk.TID(), tasks2)
	}

	// One more churn on each side crosses the generation boundary —
	// in the live kernel and in the restored one, identically.
	churnASID(t, mgr, tk)
	churnASID(t, sys2.Manager, tk2)
	if k.ASIDRollovers() != 1 {
		t.Errorf("live kernel: want 1 rollover after the final churn, got %d", k.ASIDRollovers())
	}
	if k2.ASIDRollovers() != k.ASIDRollovers() {
		t.Errorf("restored kernel rolled over %d times, live kernel %d", k2.ASIDRollovers(), k.ASIDRollovers())
	}
	if k2.ASIDGeneration() != k.ASIDGeneration() {
		t.Errorf("ASID generation diverged across restore: %d vs %d", k2.ASIDGeneration(), k.ASIDGeneration())
	}
	if k2.LiveASIDCount() != k.LiveASIDCount() {
		t.Errorf("live-ASID count diverged across restore: %d vs %d", k2.LiveASIDCount(), k.LiveASIDCount())
	}
	// The restored task still runs against its post-rollover VDS.
	if _, err := tk2.Access(0x50_0000, true); err != nil {
		t.Errorf("restored task access after rollover: %v", err)
	}
}

// TestSchedThreadExitWhileCheckpointed checkpoints a system while a
// thread occupies its own VDS, lets the thread exit (reaping that VDS)
// on the live system, and then restores the checkpoint: the restored
// world must still hold the pre-exit state — VDS, VDR, and domain grant
// intact — and the restored thread must dispatch, run, and exit cleanly.
func TestSchedThreadExitWhileCheckpointed(t *testing.T) {
	k, p, mgr := bootVDom(t, 1)
	t1 := p.NewTask(0)
	const guarded = pagetable.VAddr(0x60_0000)
	if _, err := t1.Mmap(guarded, 4*pg, true); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.VdrAlloc(t1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.PlaceInNewVDS(t1); err != nil {
		t.Fatal(err)
	}
	d, _ := mgr.AllocVdom(false)
	if _, err := mgr.Mprotect(t1, guarded, 4*pg, d); err != nil {
		t.Fatal(err)
	}

	// Checkpoint with t1 alive in its own VDS...
	sys2, tasks2 := checkpoint(t, k, p, mgr)

	// ...then exit the thread on the live system: its VDS is reaped.
	if _, err := mgr.VdrFree(t1); err != nil {
		t.Fatal(err)
	}
	if got := len(mgr.VDSes()); got != 1 {
		t.Fatalf("live system: VDS not reclaimed after exit, %d remain", got)
	}

	// The checkpoint is unaffected by the later exit: the restored world
	// still has the thread in its VDS with the VDR held.
	t1r := tasks2[uint64(t1.TID())]
	if t1r == nil {
		t.Fatalf("restored system lost task %d", t1.TID())
	}
	mgr2 := sys2.Manager
	if got := len(mgr2.VDSes()); got != 2 {
		t.Fatalf("restored system: want the pre-exit 2 VDSes, have %d", got)
	}
	if mgr2.VDROf(t1r) == nil {
		t.Fatal("restored thread lost its VDR")
	}

	// The restored thread dispatches and runs against its domain grant...
	env := sim.NewEnv()
	sched := kernel.NewSched(env, sys2.Kernel)
	env.Go("t1-restored", func(proc *sim.Proc) {
		sched.Run(proc, t1r, func() cycles.Cost {
			c, err := mgr2.WrVdr(t1r, d, core.VPermReadWrite)
			if err != nil {
				t.Errorf("restored wrvdr: %v", err)
			}
			a, err := t1r.Access(guarded, true)
			if err != nil {
				t.Errorf("restored guarded access: %v", err)
			}
			return c + a
		})
		// ...and exits cleanly in the restored world too.
		sched.Run(proc, t1r, func() cycles.Cost {
			c, err := mgr2.VdrFree(t1r)
			if err != nil {
				t.Errorf("restored vdr_free: %v", err)
			}
			return c
		})
	})
	env.Run()
	if got := len(mgr2.VDSes()); got != 1 {
		t.Fatalf("restored system: VDS not reclaimed after the replayed exit, %d remain", got)
	}
}
