package sim

import (
	"errors"
	"testing"
)

func TestWatchdogFiresAfterThreshold(t *testing.T) {
	var firedAt uint64
	w := NewWatchdog(3, func(clock uint64) { firedAt = clock })

	// Progress keeps it quiet.
	for c := uint64(10); c <= 30; c += 10 {
		if w.Observe(c) {
			t.Fatalf("watchdog fired during progress at clock %d", c)
		}
	}
	// Two stuck observations: still below the threshold of 3.
	if w.Observe(30) || w.Observe(30) {
		t.Fatal("watchdog fired below threshold")
	}
	if !w.Observe(30) {
		t.Fatal("watchdog did not fire at the threshold")
	}
	if firedAt != 30 {
		t.Fatalf("onStall clock = %d, want 30", firedAt)
	}
	if !w.Fired() {
		t.Fatal("Fired() false after firing")
	}
	// Latched: further observations are no-ops.
	if w.Observe(30) {
		t.Fatal("watchdog fired twice without Reset")
	}

	w.Reset()
	if w.Fired() {
		t.Fatal("Fired() true after Reset")
	}
	// Progress resets the stuck count after re-arming too.
	if w.Observe(40) || w.Observe(40) || w.Observe(50) {
		t.Fatal("watchdog fired after mixed progress post-Reset")
	}
}

func TestWatchdogProgressResetsCount(t *testing.T) {
	w := NewWatchdog(2, nil)
	if w.Observe(5) {
		t.Fatal("fired on first observation")
	}
	if w.Observe(5) {
		t.Fatal("fired at stuck=1 with threshold 2")
	}
	if w.Observe(6) {
		t.Fatal("fired on progress")
	}
	if w.Observe(6) {
		t.Fatal("fired at stuck=1 after progress")
	}
	if !w.Observe(6) {
		t.Fatal("did not fire at stuck=2")
	}
}

// TestRunDeadlockWithWatchdog checks that an attached watchdog converts
// the deadlock panic into a fired stall callback and a normal return.
func TestRunDeadlockWithWatchdog(t *testing.T) {
	e := NewEnv()
	r := e.NewResource(1)
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Delay(7)
		// Never releases: the waiter below deadlocks.
	})
	e.Go("waiter", func(p *Proc) {
		p.Delay(1)
		r.Acquire(p, 1)
	})

	var stalled bool
	wd := NewWatchdog(4, func(clock uint64) {
		stalled = true
		if clock != 7 {
			t.Errorf("stall clock = %d, want 7", clock)
		}
	})
	e.SetWatchdog(wd)
	end := e.Run()
	if !stalled {
		t.Fatal("watchdog did not fire on deadlock")
	}
	if end != 7 {
		t.Fatalf("Run returned clock %d, want 7", end)
	}
}

// TestRunDeadlockWithoutWatchdog pins the historical behavior: no
// watchdog means the ErrDeadlock panic is raised as before.
func TestRunDeadlockWithoutWatchdog(t *testing.T) {
	e := NewEnv()
	r := e.NewResource(1)
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Delay(3)
	})
	e.Go("waiter", func(p *Proc) {
		p.Delay(1)
		r.Acquire(p, 1)
	})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("expected a deadlock panic")
		}
		err, ok := v.(error)
		if !ok || !errors.Is(err, ErrDeadlock) {
			t.Fatalf("panic value %v is not ErrDeadlock", v)
		}
	}()
	e.Run()
}

func TestRandStateRoundTrip(t *testing.T) {
	r := NewRand(99)
	r.Uint64()
	r.Uint64()
	st := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}

	r2 := NewRand(0)
	r2.SetState(st)
	for i, w := range want {
		if got := r2.Uint64(); got != w {
			t.Fatalf("draw %d after SetState = %d, want %d", i, got, w)
		}
	}
}
