// Package replay implements the vdom-trace/v1 domain-op trace format: a
// versioned record of every protection event a workload issues at the
// syscall boundary of one of the registered kernels (VDom core, libmpk,
// EPK, DPTI), with thread ids, logical cycle timestamps, and per-event
// outcomes.
//
// A Recorder taps the instrumented layers through the unified tap.Tap
// hook and appends one Event per observed operation; a
// Replayer re-executes a Trace against a freshly booted system of the
// same configuration and reports the first Divergence — mismatching
// cost, error, or returned id — plus an end-state diff. Traces encode to
// a compact uvarint binary (Encode/Decode) and to JSONL (WriteJSONL /
// ReadJSONL) for line-oriented diffing. See REPLAY.md for the format
// specification and the record/replay how-to.
package replay

import (
	"errors"
	"hash/fnv"

	"vdom/internal/backend"
	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/dpti"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/mm"
)

// FormatVersion is the trace format version this package reads and writes.
const FormatVersion = 1

// FormatName is the format identifier carried by the JSONL header line.
const FormatName = "vdom-trace/v1"

// Kernel kinds a trace can target.
const (
	// KernelVDom replays against the VDom core on the VDom-patched kernel.
	KernelVDom = "vdom"
	// KernelLibmpk replays against the libmpk baseline on a vanilla kernel.
	KernelLibmpk = "libmpk"
	// KernelEPK replays against the EPK cycle model (no machine).
	KernelEPK = "epk"
	// KernelDPTI replays against the per-domain-page-table baseline.
	KernelDPTI = "dpti"
)

// Typed decode errors. The decoder never panics on malformed input; it
// returns one of these (possibly wrapped with positional context).
var (
	// ErrBadMagic reports input that does not start with the VDTR magic.
	ErrBadMagic = errors.New("replay: bad trace magic")
	// ErrBadVersion reports a trace written by an unknown format version.
	ErrBadVersion = errors.New("replay: unsupported trace version")
	// ErrTruncated reports input that ends inside a header, event, or
	// end-state record.
	ErrTruncated = errors.New("replay: truncated trace")
	// ErrBadRecord reports a structurally invalid record (unknown op,
	// field out of range, malformed varint).
	ErrBadRecord = errors.New("replay: malformed trace record")
)

// Op identifies one recorded domain operation.
type Op uint8

// The recorded operations. Field usage per op is documented in REPLAY.md;
// in short: Addr/Len carry the memory range, Dom the vdom/vkey/EPK-domain,
// Perm the permission argument (or RdVdr's result), Cost the op's returned
// cycle cost, and Err the outcome code.
const (
	opInvalid Op = iota
	// OpSpawn: a task was created (TID = new task id, Len = core id).
	OpSpawn
	// OpMmap: kernel mmap (FlagWrite selects writability).
	OpMmap
	// OpMunmap: kernel munmap.
	OpMunmap
	// OpMprotect: kernel mprotect (writability only).
	OpMprotect
	// OpAccess: one memory access, including any fault handling.
	OpAccess
	// OpDispatch: scheduler burst prologue — pending-interrupt drain plus
	// context switch. Recorded only when the cost is non-zero.
	OpDispatch
	// OpPopulate: demand-paging pre-fault of a range (FlagVDSTable: the
	// thread's current VDS table rather than the process shadow).
	OpPopulate
	// OpReclaim: kswapd frame reclaim (Addr = initiator core, Len = max
	// frames requested, Dom = frames actually reclaimed).
	OpReclaim
	// OpReap: VDS garbage collection (Dom = VDSes reaped).
	OpReap
	// OpVdomAlloc: core vdom_alloc (Dom = returned vdom, FlagFreq).
	OpVdomAlloc
	// OpVdomFree: core vdom_free.
	OpVdomFree
	// OpVdomMprotect: core vdom_mprotect (assign range to vdom Dom).
	OpVdomMprotect
	// OpVdrAlloc: core vdr_alloc (Len = nas argument).
	OpVdrAlloc
	// OpVdrFree: core vdr_free.
	OpVdrFree
	// OpVdrRead: core rdvdr (Perm = returned VPerm).
	OpVdrRead
	// OpVdrWrite: core wrvdr (Perm = VPerm argument).
	OpVdrWrite
	// OpNewVDS: core place_in_new_vds.
	OpNewVDS
	// OpPkeyAlloc: libmpk pkey_alloc (Dom = returned vkey).
	OpPkeyAlloc
	// OpPkeyFree: libmpk pkey_free.
	OpPkeyFree
	// OpPkeyMprotect: libmpk pkey_mprotect.
	OpPkeyMprotect
	// OpPkeySet: libmpk pkey_set (Perm = hw.Perm argument).
	OpPkeySet
	// OpEpkSwitch: EPK domain switch (Dom = domain id).
	OpEpkSwitch
	// OpDptiAlloc: dpti domain allocation (Dom = returned domain id).
	OpDptiAlloc
	// OpDptiFree: dpti domain free.
	OpDptiFree
	// OpDptiProtect: dpti dpti_mprotect (assign range to domain Dom).
	OpDptiProtect
	// OpDptiEnter: dpti domain entry (pgd switch into Dom's table).
	OpDptiEnter
	// OpDptiExit: dpti domain exit (pgd switch back to the base table).
	OpDptiExit

	opMax = OpDptiExit
)

// opNames maps ops to their stable JSONL names.
var opNames = [...]string{
	OpSpawn:        "spawn",
	OpMmap:         "mmap",
	OpMunmap:       "munmap",
	OpMprotect:     "mprotect",
	OpAccess:       "access",
	OpDispatch:     "dispatch",
	OpPopulate:     "populate",
	OpReclaim:      "reclaim",
	OpReap:         "reap",
	OpVdomAlloc:    "vdom-alloc",
	OpVdomFree:     "vdom-free",
	OpVdomMprotect: "vdom-mprotect",
	OpVdrAlloc:     "vdr-alloc",
	OpVdrFree:      "vdr-free",
	OpVdrRead:      "rdvdr",
	OpVdrWrite:     "wrvdr",
	OpNewVDS:       "new-vds",
	OpPkeyAlloc:    "pkey-alloc",
	OpPkeyFree:     "pkey-free",
	OpPkeyMprotect: "pkey-mprotect",
	OpPkeySet:      "pkey-set",
	OpEpkSwitch:    "epk-switch",
	OpDptiAlloc:    "dpti-alloc",
	OpDptiFree:     "dpti-free",
	OpDptiProtect:  "dpti-protect",
	OpDptiEnter:    "dpti-enter",
	OpDptiExit:     "dpti-exit",
}

// String names the op as the JSONL encoding does.
func (o Op) String() string {
	if o > opInvalid && o <= opMax {
		return opNames[o]
	}
	return "invalid"
}

// opFromName inverts String for the JSONL decoder.
func opFromName(s string) (Op, bool) {
	for o := OpSpawn; o <= opMax; o++ {
		if opNames[o] == s {
			return o, true
		}
	}
	return opInvalid, false
}

// Event flag bits.
const (
	// FlagWrite marks a write access / writable mapping.
	FlagWrite uint8 = 1 << 0
	// FlagVDSTable marks a populate into the thread's current VDS table.
	FlagVDSTable uint8 = 1 << 1
	// FlagFreq marks a frequently-accessed vdom allocation.
	FlagFreq uint8 = 1 << 2
)

// ErrCode is the compact encoding of an operation's error outcome. Replay
// compares codes, not messages, so error text can evolve without breaking
// golden traces.
type ErrCode uint8

// The error codes of vdom-trace/v1.
const (
	CodeOK ErrCode = iota
	CodeSigsegv
	CodeBlocked
	CodeNoVDR
	CodeDenied
	CodeReassign
	CodeFreedVdom
	CodeNoResources
	CodeExhausted
	CodeDegraded
	CodeNoFreeKey
	CodeUnknownKey
	CodeBadRange
	CodeNoMapping
	CodeUnknownDomain
	CodeNoASID
	CodeDomainCapacity

	// codeMax is the highest dedicated code; the JSONL decoder's inverse
	// name lookup scans up to it.
	codeMax = CodeDomainCapacity

	// CodeOther is any error not covered by a dedicated code.
	CodeOther ErrCode = 255
)

// String names the code.
func (c ErrCode) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeSigsegv:
		return "sigsegv"
	case CodeBlocked:
		return "blocked"
	case CodeNoVDR:
		return "no-vdr"
	case CodeDenied:
		return "denied"
	case CodeReassign:
		return "reassign"
	case CodeFreedVdom:
		return "freed-vdom"
	case CodeNoResources:
		return "no-resources"
	case CodeExhausted:
		return "exhausted"
	case CodeDegraded:
		return "degraded"
	case CodeNoFreeKey:
		return "no-free-key"
	case CodeUnknownKey:
		return "unknown-vkey"
	case CodeBadRange:
		return "bad-range"
	case CodeNoMapping:
		return "no-mapping"
	case CodeUnknownDomain:
		return "unknown-domain"
	case CodeNoASID:
		return "no-asid"
	case CodeDomainCapacity:
		return "domain-capacity"
	default:
		return "other"
	}
}

// CodeOf maps an error to its trace code. Both the Recorder and the
// Replayer use it, so a replayed failure matches its recording as long as
// the failure class is the same. Specific sentinels are checked before the
// generic SIGSEGV wrapper so "denied" and "freed vdom" keep their identity.
func CodeOf(err error) ErrCode {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, core.ErrDenied):
		return CodeDenied
	case errors.Is(err, core.ErrNoVDR):
		return CodeNoVDR
	case errors.Is(err, core.ErrReassign):
		return CodeReassign
	case errors.Is(err, core.ErrFreedVdom):
		return CodeFreedVdom
	case errors.Is(err, core.ErrDegraded):
		return CodeDegraded
	case errors.Is(err, core.ErrExhausted):
		return CodeExhausted
	case errors.Is(err, core.ErrNoResources):
		return CodeNoResources
	case errors.Is(err, libmpk.ErrNoFreeKey):
		return CodeNoFreeKey
	case errors.Is(err, libmpk.ErrUnknownKey):
		return CodeUnknownKey
	case errors.Is(err, dpti.ErrUnknownDomain):
		return CodeUnknownDomain
	case errors.Is(err, dpti.ErrNoASID):
		return CodeNoASID
	case errors.Is(err, backend.ErrDomainCapacity):
		return CodeDomainCapacity
	case errors.Is(err, kernel.ErrBlocked):
		return CodeBlocked
	case errors.Is(err, mm.ErrBadRange):
		return CodeBadRange
	case errors.Is(err, mm.ErrNoMapping):
		return CodeNoMapping
	case errors.Is(err, kernel.ErrSigsegv):
		return CodeSigsegv
	default:
		return CodeOther
	}
}

// Event is one recorded domain operation.
type Event struct {
	// Time is the trace's logical cycle clock when the op started: the
	// sum of the Cost of every earlier event. The binary encoding stores
	// deltas, so the clock must be non-decreasing (it is, by
	// construction).
	Time uint64
	// TID is the acting thread id (0 for process-level ops and for EPK,
	// whose thread ids are the workload's own 0-based worker ids).
	TID uint64
	// Op is the operation.
	Op Op
	// Addr and Len are the affected virtual range, when meaningful.
	Addr uint64
	Len  uint64
	// Dom is the vdom / vkey / EPK domain involved — the returned id for
	// the alloc ops, the argument otherwise.
	Dom uint64
	// Perm is the permission argument (core.VPerm or hw.Perm numeric
	// value), or RdVdr's returned permission.
	Perm uint8
	// Flags carries the Flag* bits.
	Flags uint8
	// Cost is the cycle cost the operation returned.
	Cost uint64
	// Err is the operation's outcome code (CodeOK on success).
	Err ErrCode
}

// Header flag bits (Header.Flags) — the configuration knobs a replayed
// system must reproduce.
const (
	// HdrSecureGate: core.Policy.SecureGate.
	HdrSecureGate uint32 = 1 << 0
	// HdrNoPMDOpt: core.Policy.NoPMDOpt.
	HdrNoPMDOpt uint32 = 1 << 1
	// HdrStrictLRU: core.Policy.StrictLRU.
	HdrStrictLRU uint32 = 1 << 2
	// HdrNoASID: hw.Config.NoASID.
	HdrNoASID uint32 = 1 << 3
	// HdrVDomKernel: kernel.Config.VDomEnabled.
	HdrVDomKernel uint32 = 1 << 4
	// HdrHugePages: libmpk.Huge2M page mode.
	HdrHugePages uint32 = 1 << 5
)

// Header describes the system a trace was recorded on; the Replayer boots
// an identical one from it.
type Header struct {
	// Version is the format version (FormatVersion).
	Version int
	// Kernel is the kernel kind (KernelVDom, KernelLibmpk, KernelEPK).
	Kernel string
	// Arch names the cost table (see ArchName).
	Arch string
	// Cores is the machine size (ignored for EPK).
	Cores int
	// TLBCap is hw.Config.TLBCapacity (0 = unlimited).
	TLBCap int
	// Seed is the workload's PRNG seed, for provenance.
	Seed uint64
	// Workload names the recorded workload.
	Workload string
	// ConfigDigest fingerprints the full workload configuration
	// (DigestString), so replays against a differently parameterized
	// recording are detectable.
	ConfigDigest uint64
	// Flags carries the Hdr* configuration bits.
	Flags uint32
	// FlushThreshold is core.Policy.RangeFlushThresholdPages.
	FlushThreshold uint64
	// Nas is core.Policy.DefaultNas.
	Nas int
	// Domains is the EPK domain capacity (epk.New's numDomains).
	Domains int
	// Extra carries layer-specific configuration a wrapper needs to
	// rebuild the recorded environment (the chaos layer stores its fault
	// mix here). Encoded sorted by key.
	Extra map[string]uint64
}

// Trace is one recorded run: header, event stream, and the end-state
// summary used for final-state verification. A truncated failure dump has
// End == nil, which skips the end-state check on replay.
type Trace struct {
	Header Header
	Events []Event
	// End maps end-state keys (layer counters, the final clock, the
	// domain-map digest) to values; see EndState in replay.go.
	End map[string]uint64
}

// ArchName returns the header encoding of an architecture.
func ArchName(a cycles.Arch) string {
	switch a {
	case cycles.ARM:
		return "arm"
	case cycles.Power:
		return "power"
	case cycles.RISCV:
		return "riscv"
	default:
		return "x86"
	}
}

// ArchFromName inverts ArchName.
func ArchFromName(s string) (cycles.Arch, error) {
	switch s {
	case "x86":
		return cycles.X86, nil
	case "arm":
		return cycles.ARM, nil
	case "power":
		return cycles.Power, nil
	case "riscv":
		return cycles.RISCV, nil
	default:
		return 0, errors.New("replay: unknown arch " + s)
	}
}

// DigestString returns the FNV-1a fingerprint used for
// Header.ConfigDigest.
func DigestString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
