package tlb

import (
	"testing"
	"testing/quick"
)

func mk(asid ASID, vpn uint64) Entry {
	return Entry{ASID: asid, VPN: vpn, Frame: 100, Pdom: 2, Writable: true}
}

func TestInsertLookup(t *testing.T) {
	c := New(16)
	c.Insert(mk(1, 0x40))
	e, ok := c.Lookup(1, 0x40)
	if !ok {
		t.Fatal("miss after insert")
	}
	if e.Frame != 100 || e.Pdom != 2 || !e.Writable {
		t.Errorf("entry = %+v", e)
	}
	if _, ok := c.Lookup(2, 0x40); ok {
		t.Error("hit under wrong ASID")
	}
	if _, ok := c.Lookup(1, 0x41); ok {
		t.Error("hit on wrong VPN")
	}
}

func TestASIDSeparation(t *testing.T) {
	c := New(16)
	c.Insert(Entry{ASID: 1, VPN: 5, Frame: 10})
	c.Insert(Entry{ASID: 2, VPN: 5, Frame: 20})
	e1, _ := c.Lookup(1, 5)
	e2, _ := c.Lookup(2, 5)
	if e1.Frame != 10 || e2.Frame != 20 {
		t.Errorf("frames = %d, %d; want 10, 20", e1.Frame, e2.Frame)
	}
}

func TestOverwriteSameKey(t *testing.T) {
	c := New(4)
	c.Insert(Entry{ASID: 1, VPN: 7, Frame: 1})
	c.Insert(Entry{ASID: 1, VPN: 7, Frame: 2})
	if c.Len() != 1 {
		t.Errorf("Len = %d after overwrite, want 1", c.Len())
	}
	e, _ := c.Lookup(1, 7)
	if e.Frame != 2 {
		t.Errorf("frame = %d, want 2", e.Frame)
	}
}

func TestCapacityEviction(t *testing.T) {
	c := New(8)
	for vpn := uint64(0); vpn < 20; vpn++ {
		c.Insert(mk(1, vpn))
	}
	if c.Len() != 8 {
		t.Errorf("Len = %d, want capacity 8", c.Len())
	}
}

func TestClockKeepsReferencedEntries(t *testing.T) {
	c := New(4)
	for vpn := uint64(0); vpn < 4; vpn++ {
		c.Insert(mk(1, vpn))
	}
	// All four entries are referenced, so this insert sweeps the clock
	// hand across the whole cache (clearing reference bits) and evicts
	// the first slot.
	c.Insert(mk(1, 100))
	if _, ok := c.Lookup(1, 0); ok {
		t.Error("expected vpn 0 to be the clock victim")
	}
	// Re-reference vpn 2; the next insert must pick the first
	// unreferenced entry (vpn 1) and spare the re-referenced one.
	c.Lookup(1, 2)
	c.Insert(mk(1, 101))
	if _, ok := c.Lookup(1, 1); ok {
		t.Error("expected vpn 1 to be evicted")
	}
	if _, ok := c.Lookup(1, 2); !ok {
		t.Error("recently referenced entry was evicted while unreferenced entries existed")
	}
}

func TestFlushPage(t *testing.T) {
	c := New(16)
	c.Insert(mk(1, 5))
	c.Insert(mk(1, 6))
	c.FlushPage(1, 5)
	if _, ok := c.Lookup(1, 5); ok {
		t.Error("flushed page still resident")
	}
	if _, ok := c.Lookup(1, 6); !ok {
		t.Error("unrelated page flushed")
	}
}

func TestFlushRange(t *testing.T) {
	c := New(64)
	for vpn := uint64(0); vpn < 32; vpn++ {
		c.Insert(mk(1, vpn))
		c.Insert(mk(2, vpn))
	}
	c.FlushRange(1, 8, 16)
	for vpn := uint64(0); vpn < 32; vpn++ {
		_, ok := c.Lookup(1, vpn)
		inRange := vpn >= 8 && vpn < 24
		if inRange && ok {
			t.Fatalf("vpn %d in flushed range still resident", vpn)
		}
		if !inRange && !ok {
			t.Fatalf("vpn %d outside range was flushed", vpn)
		}
		if _, ok := c.Lookup(2, vpn); !ok {
			t.Fatalf("ASID 2 vpn %d flushed by ASID 1 range flush", vpn)
		}
	}
}

func TestFlushASID(t *testing.T) {
	c := New(64)
	for vpn := uint64(0); vpn < 10; vpn++ {
		c.Insert(mk(3, vpn))
		c.Insert(mk(4, vpn))
	}
	c.FlushASID(3)
	if c.CountASID(3) != 0 {
		t.Errorf("ASID 3 count = %d after flush", c.CountASID(3))
	}
	if c.CountASID(4) != 10 {
		t.Errorf("ASID 4 count = %d, want 10", c.CountASID(4))
	}
}

func TestFlushAll(t *testing.T) {
	c := New(32)
	for vpn := uint64(0); vpn < 10; vpn++ {
		c.Insert(mk(1, vpn))
	}
	c.FlushAll()
	if c.Len() != 0 {
		t.Errorf("Len = %d after FlushAll", c.Len())
	}
	// Table remains usable.
	c.Insert(mk(1, 99))
	if _, ok := c.Lookup(1, 99); !ok {
		t.Error("insert after FlushAll failed")
	}
}

func TestStats(t *testing.T) {
	c := New(16)
	c.Insert(mk(1, 1))
	c.Lookup(1, 1) // hit
	c.Lookup(1, 2) // miss
	c.FlushPage(1, 1)
	c.FlushASID(1)
	c.FlushAll()
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.PageFlushes != 1 || s.ASIDFlushes != 1 || s.FullFlushes != 1 {
		t.Errorf("flush stats = %+v", s)
	}
	if s.Invalidated != 1 {
		t.Errorf("Invalidated = %d, want 1 (page flush removed the only entry)", s.Invalidated)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero stats")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: Len never exceeds capacity and index/slots stay consistent
// under random operation sequences.
func TestLenBoundedProperty(t *testing.T) {
	if err := quick.Check(func(ops []uint16) bool {
		c := New(16)
		for _, op := range ops {
			asid := ASID(op % 4)
			vpn := uint64(op % 64)
			switch op % 5 {
			case 0, 1:
				c.Insert(mk(asid, vpn))
			case 2:
				c.Lookup(asid, vpn)
			case 3:
				c.FlushPage(asid, vpn)
			case 4:
				c.FlushASID(asid)
			}
			if c.Len() > c.Capacity() {
				return false
			}
		}
		// Every indexed entry must be resident and agree on its key.
		for asid := ASID(0); asid < 4; asid++ {
			for vpn := uint64(0); vpn < 64; vpn++ {
				if e, ok := c.Lookup(asid, vpn); ok {
					if e.ASID != asid || e.VPN != vpn {
						return false
					}
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// Property: after FlushASID(a), no entry under a survives, and entries of
// other ASIDs are untouched.
func TestFlushASIDProperty(t *testing.T) {
	if err := quick.Check(func(vpns []uint8, target uint8) bool {
		c := New(256)
		a := ASID(target % 4)
		for _, v := range vpns {
			c.Insert(mk(ASID(v%4), uint64(v)))
		}
		before := map[ASID]int{}
		for x := ASID(0); x < 4; x++ {
			before[x] = c.CountASID(x)
		}
		c.FlushASID(a)
		if c.CountASID(a) != 0 {
			return false
		}
		for x := ASID(0); x < 4; x++ {
			if x != a && c.CountASID(x) != before[x] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestLookupMemoStaleness exercises the last-hit memo's self-validation:
// after the memoized slot is flushed, evicted, or reused for a different
// key, a lookup must fall back to the index and never return stale data.
func TestLookupMemoStaleness(t *testing.T) {
	tl := New(2)
	e1 := Entry{ASID: 1, VPN: 10, Frame: 100}
	e2 := Entry{ASID: 1, VPN: 20, Frame: 200}
	tl.Insert(e1)
	if got, ok := tl.Lookup(1, 10); !ok || got != e1 {
		t.Fatalf("warm lookup = %+v, %v", got, ok)
	}

	// Flush the memoized page: the memo's slot is invalid now.
	tl.FlushPage(1, 10)
	if _, ok := tl.Lookup(1, 10); ok {
		t.Fatal("lookup hit a flushed page via the memo")
	}

	// Reuse the memoized slot for a different translation: content check
	// must reject the memo and the index must resolve the new key.
	tl.Insert(e2)
	if got, ok := tl.Lookup(1, 20); !ok || got != e2 {
		t.Fatalf("lookup after slot reuse = %+v, %v", got, ok)
	}
	if _, ok := tl.Lookup(1, 10); ok {
		t.Fatal("stale key still resolves")
	}

	// FlushAll clears every slot; the memo must not resurrect anything.
	tl.Insert(e1)
	tl.Lookup(1, 10)
	tl.FlushAll()
	if _, ok := tl.Lookup(1, 10); ok {
		t.Fatal("lookup hit after FlushAll")
	}
}

// TestLookupMemoSideEffects: a memo hit must be indistinguishable from an
// indexed hit — same Hits counter, same reference-bit refresh (observable
// through clock replacement ordering).
func TestLookupMemoSideEffects(t *testing.T) {
	tl := New(2)
	tl.Insert(Entry{ASID: 1, VPN: 1})
	tl.Insert(Entry{ASID: 1, VPN: 2})
	// Two consecutive hits on VPN 1: the second goes through the memo.
	tl.Lookup(1, 1)
	tl.Lookup(1, 1)
	if s := tl.Stats(); s.Hits != 2 {
		t.Fatalf("Hits = %d, want 2", s.Hits)
	}
	// Both slots referenced → clock sweeps hand over slot 0 (clearing its
	// bit), then slot 1, then evicts slot 0. The memo hit on VPN 1 must
	// have set the reference bit for this to hold.
	tl.Insert(Entry{ASID: 1, VPN: 3})
	if _, ok := tl.Lookup(1, 2); !ok {
		t.Error("VPN 2 evicted; memo hit failed to set reference bit ordering")
	}
}
