package core

import (
	"fmt"

	"vdom/internal/cycles"
	"vdom/internal/pagetable"
)

// EventKind classifies a domain-virtualization event.
type EventKind int

// The observable events of the §5.4 algorithm.
const (
	// EventMap: a vdom was bound to a pdom in a VDS (flowchart ❸, or
	// the remap half of an eviction).
	EventMap EventKind = iota
	// EventEvict: a vdom was evicted from a VDS (❺).
	EventEvict
	// EventSwitch: a thread switched residency to another VDS (❺).
	EventSwitch
	// EventMigrate: a thread migrated to accommodate a new vdom (❼/❽).
	EventMigrate
	// EventVDSAlloc: a new VDS was created (❽).
	EventVDSAlloc
	// EventFree: a vdom was freed (vdom_free).
	EventFree
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventMap:
		return "map"
	case EventEvict:
		return "evict"
	case EventSwitch:
		return "switch"
	case EventMigrate:
		return "migrate"
	case EventVDSAlloc:
		return "vds-alloc"
	case EventFree:
		return "free"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one traced occurrence.
type Event struct {
	Kind EventKind
	// TID is the acting thread (0 when not thread-initiated).
	TID int
	// Vdom is the virtual domain involved (0 for pure VDS events).
	Vdom VdomID
	// VDS is the id of the address space involved.
	VDS int
	// Pdom is the hardware domain involved, when meaningful.
	Pdom pagetable.Pdom
	// Cost is the cycles attributed to the event, when known at emit
	// time.
	Cost cycles.Cost
}

// String renders the event compactly, e.g. "evict vdom=7 vds=2 pdom=5".
func (e Event) String() string {
	return fmt.Sprintf("%s tid=%d vdom=%d vds=%d pdom=%d cost=%d",
		e.Kind, e.TID, e.Vdom, e.VDS, e.Pdom, e.Cost)
}

// Tracer receives domain-virtualization events. It must not call back into
// the Manager.
type Tracer func(Event)

// SetTracer installs (or, with nil, removes) the event tracer. Tracing is
// free when disabled.
func (m *Manager) SetTracer(t Tracer) { m.tracer = t }

func (m *Manager) trace(e Event) {
	if m.metrics != nil {
		// Feed the domain-activation outcome histograms (§5.4 flowchart
		// ①–⑧): one observation per map/evict/switch/migrate decision.
		switch e.Kind {
		case EventMap, EventEvict, EventSwitch, EventMigrate:
			m.metrics.Observe("core/activation/"+e.Kind.String(), uint64(e.Cost))
		}
	}
	if m.tracer != nil {
		m.tracer(e)
	}
}
