package fleet

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// testExec is the deterministic cell computation the harness tests
// distribute: pure function of the spec, with optional per-cell delay
// and scripted misbehavior.
type testHarness struct {
	// delay stretches every cell so chaos hooks reliably land mid-cell.
	delay time.Duration
	// pad appends filler to every cell's Text so result frames span
	// enough transport bytes to draw the per-window fault injector.
	pad int
	// panicCells always panic; failOnce cells fail on first execution
	// only; wedgeOnce cells block (without completing) on first
	// execution only.
	panicCells map[int]bool
	mu         sync.Mutex
	failed     map[int]bool
	wedged     map[int]bool
	failOnce   map[int]bool
	wedgeOnce  map[int]bool
	release    chan struct{}
}

func newHarness() *testHarness {
	return &testHarness{
		panicCells: map[int]bool{},
		failOnce:   map[int]bool{},
		wedgeOnce:  map[int]bool{},
		failed:     map[int]bool{},
		wedged:     map[int]bool{},
		release:    make(chan struct{}),
	}
}

func (h *testHarness) exec(spec CellSpec) (CellResult, error) {
	if h.panicCells[spec.Index] {
		panic(fmt.Sprintf("scripted panic in cell %d", spec.Index))
	}
	h.mu.Lock()
	if h.failOnce[spec.Index] && !h.failed[spec.Index] {
		h.failed[spec.Index] = true
		h.mu.Unlock()
		return CellResult{}, fmt.Errorf("scripted transient failure in cell %d", spec.Index)
	}
	wedge := h.wedgeOnce[spec.Index] && !h.wedged[spec.Index]
	if wedge {
		h.wedged[spec.Index] = true
	}
	h.mu.Unlock()
	if wedge {
		<-h.release
		return CellResult{}, errors.New("wedge released")
	}
	if h.delay > 0 {
		time.Sleep(h.delay)
	}
	return CellResult{
		Text:    fmt.Sprintf("%s[%d] seed=%d kernel=%s\n", spec.Grid, spec.Index, spec.Seed, spec.Kernel) + strings.Repeat("x", h.pad),
		Total:   spec.Seed + uint64(spec.Index)*17,
		Metrics: []byte(fmt.Sprintf(`{"cell":%d,"quick":%v}`, spec.Index, spec.Quick())),
		Trace:   []byte(fmt.Sprintf(`{"traceEvents":[{"cell":%d}]}`, spec.Index)),
		Aux:     []byte{byte(spec.Index), byte(spec.Index >> 8)},
	}, nil
}

// spawn builds in-memory pipe workers running the real Worker loop, so
// every test exercises the genuine protocol — framing, heartbeats,
// hello, shutdown — without subprocesses. Kill severs both pipes
// abruptly, the in-memory analogue of SIGKILL.
func (h *testHarness) spawn(heartbeat time.Duration) Spawn {
	return func(id int) (*WorkerProc, error) {
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			Worker(inR, outW, WorkerConfig{ID: id, HeartbeatEvery: heartbeat}, h.exec)
			outW.Close()
		}()
		var once sync.Once
		kill := func() {
			once.Do(func() {
				outR.CloseWithError(errors.New("killed"))
				inR.CloseWithError(errors.New("killed"))
			})
		}
		return &WorkerProc{
			In:   inW,
			Out:  outR,
			Kill: kill,
			Wait: func() error { <-done; return nil },
		}, nil
	}
}

func testSpecs(n int) []CellSpec {
	specs := make([]CellSpec, n)
	for i := range specs {
		specs[i] = CellSpec{Grid: "testgrid", Index: i, Seed: 0xabc, Kernel: "dpti", Flags: FlagQuick}
	}
	return specs
}

// wantResults computes the reference results the fleet must reproduce
// byte-for-byte, whatever the width or fault schedule.
func wantResults(h *testHarness, specs []CellSpec) []CellResult {
	out := make([]CellResult, len(specs))
	for i, s := range specs {
		r, _ := h.exec(s)
		out[i] = r
	}
	return out
}

func requireIdentical(t *testing.T, got, want []CellResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("cell %d differs:\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}
}

func TestFleetBasic(t *testing.T) {
	h := newHarness()
	specs := testSpecs(12)
	want := wantResults(newHarness(), specs)
	got, rep := Run(Config{
		Workers: 3,
		Spawn:   h.spawn(5 * time.Millisecond),
		Exec:    h.exec,
	}, specs)
	requireIdentical(t, got, want)
	if !rep.Healthy() || rep.Degraded {
		t.Fatalf("report unhealthy or degraded: %+v", rep)
	}
	if rep.Cells != 12 || rep.Workers != 3 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
}

func TestFleetByteIdenticalAcrossWidths(t *testing.T) {
	specs := testSpecs(10)
	want := wantResults(newHarness(), specs)
	for _, workers := range []int{1, 2, 4} {
		h := newHarness()
		got, rep := Run(Config{Workers: workers, Spawn: h.spawn(5 * time.Millisecond), Exec: h.exec}, specs)
		requireIdentical(t, got, want)
		if !rep.Healthy() {
			t.Fatalf("width %d unhealthy: %+v", workers, rep)
		}
	}
	// Degraded in-process mode produces the same bytes too.
	h := newHarness()
	got, rep := Run(Config{Workers: 2, Spawn: nil, Exec: h.exec, LocalParallel: 2}, specs)
	requireIdentical(t, got, want)
	if !rep.Degraded {
		t.Fatal("nil Spawn did not degrade")
	}
}

func TestFleetKillMidCellRecovers(t *testing.T) {
	h := newHarness()
	h.delay = 20 * time.Millisecond
	specs := testSpecs(10)
	want := wantResults(func() *testHarness { h2 := newHarness(); h2.delay = 0; return h2 }(), specs)
	got, rep := Run(Config{
		Workers:     3,
		Spawn:       h.spawn(5 * time.Millisecond),
		Exec:        h.exec,
		KillAfter:   2,
		CellTimeout: 5 * time.Second,
		BackoffBase: time.Millisecond,
	}, specs)
	requireIdentical(t, got, want)
	if rep.WorkerDeaths < 1 {
		t.Fatalf("no worker death recorded: %+v", rep)
	}
	if rep.Respawns < 1 {
		t.Fatalf("no respawn recorded: %+v", rep)
	}
	if rep.Recoveries < 1 {
		t.Fatalf("kill mid-cell produced no recovery: %+v", rep)
	}
	if !rep.Healthy() {
		t.Fatalf("unhealthy after recovery: %+v", rep)
	}
}

func TestFleetTransportFaultsStayByteIdentical(t *testing.T) {
	h := newHarness()
	h.delay = 2 * time.Millisecond
	h.pad = 8 << 10 // ~2 fault windows per result frame
	specs := testSpecs(24)
	ref := newHarness()
	ref.pad = h.pad
	want := wantResults(ref, specs)
	got, rep := Run(Config{
		Workers: 3,
		Spawn:   h.spawn(time.Millisecond),
		Exec:    h.exec,
		Faults: FaultConfig{
			Seed:      42,
			Corrupt:   0.08,
			Truncate:  0.02,
			Duplicate: 0.05,
			Delay:     0.1,
		},
		MaxAttempts: 10,
		CellTimeout: 5 * time.Second,
		BackoffBase: time.Millisecond,
	}, specs)
	requireIdentical(t, got, want)
	if !rep.Healthy() {
		t.Fatalf("faulted run unhealthy: %+v", rep)
	}
	// The seeded schedule is dense enough that some fault must fire.
	total := uint64(0)
	for _, v := range rep.FaultsInjected {
		total += v
	}
	if total == 0 {
		t.Fatalf("fault injector never fired: %+v", rep)
	}
}

func TestFleetTransientWorkerFailureRecovers(t *testing.T) {
	h := newHarness()
	h.failOnce[4] = true
	specs := testSpecs(8)
	want := wantResults(newHarness(), specs)
	got, rep := Run(Config{
		Workers:     2,
		Spawn:       h.spawn(5 * time.Millisecond),
		Exec:        h.exec,
		BackoffBase: time.Millisecond,
	}, specs)
	requireIdentical(t, got, want)
	if rep.Recoveries < 1 {
		t.Fatalf("transient failure produced no recovery: %+v", rep)
	}
	if !rep.Healthy() {
		t.Fatalf("unhealthy: %+v", rep)
	}
}

func TestFleetQuarantinesPersistentFailure(t *testing.T) {
	h := newHarness()
	h.panicCells[3] = true
	specs := testSpecs(6)
	got, rep := Run(Config{
		Workers:     2,
		Spawn:       h.spawn(5 * time.Millisecond),
		Exec:        h.exec,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
	}, specs)
	if rep.Healthy() {
		t.Fatalf("persistent panic not quarantined: %+v", rep)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined = %+v, want exactly cell 3", rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Grid != "testgrid" || q.Index != 3 || q.Attempts != 3 {
		t.Fatalf("quarantine record wrong: %+v", q)
	}
	if !strings.Contains(q.LastError, "panic") {
		t.Fatalf("quarantine cause lost the panic: %q", q.LastError)
	}
	// The panicking cell still carries a failed result (local fill also
	// panics, caught by runGuarded); healthy cells are intact.
	if got[3].Err == "" {
		t.Fatalf("quarantined cell result lost its error: %+v", got[3])
	}
	wantH := newHarness()
	for i, s := range specs {
		if i == 3 {
			continue
		}
		w, _ := wantH.exec(s)
		if !reflect.DeepEqual(got[i], w) {
			t.Fatalf("healthy cell %d disturbed by quarantine: %+v", i, got[i])
		}
	}
}

func TestFleetHeartbeatStallTimesOut(t *testing.T) {
	h := newHarness()
	h.wedgeOnce[2] = true
	defer close(h.release)
	specs := testSpecs(6)
	want := wantResults(newHarness(), specs)
	// Heartbeats are far apart, so the wedged cell's silence trips the
	// per-cell timeout; healthy cells complete well inside it.
	got, rep := Run(Config{
		Workers:     2,
		Spawn:       h.spawn(time.Hour),
		Exec:        h.exec,
		CellTimeout: 150 * time.Millisecond,
		BackoffBase: time.Millisecond,
	}, specs)
	requireIdentical(t, got, want)
	if rep.Timeouts < 1 {
		t.Fatalf("stall not detected as timeout: %+v", rep)
	}
	if rep.Recoveries < 1 {
		t.Fatalf("timed-out cell not recovered: %+v", rep)
	}
	if !rep.Healthy() {
		t.Fatalf("unhealthy: %+v", rep)
	}
}

func TestFleetDegradesWhenSpawnFails(t *testing.T) {
	h := newHarness()
	specs := testSpecs(5)
	want := wantResults(newHarness(), specs)
	got, rep := Run(Config{
		Workers:       3,
		Spawn:         func(int) (*WorkerProc, error) { return nil, errors.New("no such binary") },
		Exec:          h.exec,
		LocalParallel: 2,
	}, specs)
	requireIdentical(t, got, want)
	if !rep.Degraded {
		t.Fatalf("all-spawns-failed did not degrade: %+v", rep)
	}
	if !rep.Healthy() {
		t.Fatalf("degraded run unhealthy: %+v", rep)
	}
}

func TestFleetEmptySpecs(t *testing.T) {
	h := newHarness()
	got, rep := Run(Config{Workers: 2, Spawn: h.spawn(time.Millisecond), Exec: h.exec}, nil)
	if len(got) != 0 || !rep.Healthy() {
		t.Fatalf("empty run = %v, %+v", got, rep)
	}
}

func TestWorkerRejectsGarbage(t *testing.T) {
	// A worker fed garbage must return a typed error, not wedge or
	// panic.
	in := strings.NewReader("not a frame at all")
	err := Worker(in, io.Discard, WorkerConfig{ID: 0}, newHarness().exec)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage input = %v, want ErrBadMagic", err)
	}
}
