package bench

import (
	"fmt"
	"io"

	"vdom/internal/backend"
	"vdom/internal/cycles"
	"vdom/internal/workload"
)

// matrixSystem maps a registered backend name to the Table 4 pattern
// runner that drives it. A backend without a pattern runner renders as
// "NA" cells (none today).
func matrixSystem(name string) (workload.PatternSystem, bool) {
	switch name {
	case "vdom":
		return workload.PatternVDomSecure, true
	case "libmpk":
		return workload.PatternLibmpk, true
	case "epk":
		return workload.PatternEPK, true
	case "dpti":
		return workload.PatternDPTI, true
	default:
		return 0, false
	}
}

// matrixArches is the architecture axis of the comparison matrix: every
// cost table the simulator carries, including the projected ones.
var matrixArches = []cycles.Arch{cycles.X86, cycles.ARM, cycles.Power, cycles.RISCV}

// matrixVdoms is the fixed domain count of the matrix cells — high
// enough that vdom-style systems juggle virtualization and table-bound
// systems feel churn, low enough that every backend can represent it.
const matrixVdoms = 8

// Matrix compares every registered kernel backend across every cost
// architecture: average cycles per domain activation in the
// switch-triggering pattern at matrixVdoms domains. Rows come from the
// backend registry, so a newly registered kernel shows up with no bench
// change; columns are every cost table including the projected POWER
// and sealable-PKS RISC-V parameters.
func Matrix(w io.Writer, o Options) {
	names := backend.Names()
	cols := []string{"kernel \\ arch"}
	for _, a := range matrixArches {
		cols = append(cols, a.String())
	}
	t := &Table{
		Title: fmt.Sprintf(
			"Kernel x arch matrix: average cycles per activation, trig pattern, %d domains",
			matrixVdoms),
		Columns: cols,
	}

	na := len(matrixArches)
	results := o.mapGrid("matrix", 0)
	for ri, name := range names {
		row := []string{name}
		for ci := range matrixArches {
			c := results[ri*na+ci]
			o.collect(c)
			row = append(row, c.text)
		}
		t.Row(row...)
	}
	o.Render(w, t)
}
