package vdom

import (
	"errors"
	"testing"
)

// FuzzPublicAPI drives the whole stack through the public API with an
// arbitrary operation tape, checking that protection outcomes always match
// the written VDR state and that nothing panics or leaks access.
func FuzzPublicAPI(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 9, 9})
	f.Add([]byte{5, 200, 3, 7, 1, 250, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, tape []byte) {
		sys := NewSystem(Config{Arch: X86, Cores: 2})
		p := sys.NewProcess(DefaultPolicy())
		threads := []*Thread{p.NewThread(0), p.NewThread(1)}
		for _, th := range threads {
			if _, err := th.AllocVDR(2); err != nil {
				t.Fatal(err)
			}
		}
		type dom struct {
			d     Domain
			a     Addr
			alive bool
		}
		var doms []*dom
		perms := []Perm{NoAccess, ReadOnly, ReadWrite, Pinned}
		// Track each thread's intended permission per domain.
		intent := map[*Thread]map[Domain]Perm{
			threads[0]: {}, threads[1]: {},
		}
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i], tape[i+1]
			th := threads[int(op>>4)%2]
			switch op % 5 {
			case 0: // new protected region
				if len(doms) >= 40 {
					continue
				}
				a, err := th.Mmap(PageSize)
				if err != nil {
					t.Fatal(err)
				}
				d, _ := p.AllocDomain(arg%8 == 0)
				if _, err := p.ProtectRange(th, a, PageSize, d); err != nil {
					t.Fatal(err)
				}
				doms = append(doms, &dom{d: d, a: a, alive: true})
			case 1: // permission change
				if len(doms) == 0 {
					continue
				}
				e := doms[int(arg)%len(doms)]
				perm := perms[int(arg)%4]
				_, err := th.WriteVDR(e.d, perm)
				if e.alive {
					if err != nil {
						t.Fatalf("WriteVDR on live domain: %v", err)
					}
					intent[th][e.d] = perm
				} else if err == nil {
					t.Fatal("WriteVDR on freed domain succeeded")
				}
			case 2: // free
				if len(doms) == 0 {
					continue
				}
				e := doms[int(arg)%len(doms)]
				if e.alive {
					if _, err := p.FreeDomain(e.d); err != nil {
						t.Fatal(err)
					}
					e.alive = false
				}
			default: // access and validate
				if len(doms) == 0 {
					continue
				}
				e := doms[int(arg)%len(doms)]
				write := arg%2 == 1
				var err error
				if write {
					err = th.Store(e.a)
				} else {
					err = th.Load(e.a)
				}
				want := e.alive && intent[th][e.d].Allows(write)
				if want && err != nil {
					t.Fatalf("allowed access denied (perm %v, write %v): %v",
						intent[th][e.d], write, err)
				}
				if !want && !errors.Is(err, ErrSigsegv) {
					t.Fatalf("forbidden access returned %v (perm %v, alive %v, write %v)",
						err, intent[th][e.d], e.alive, write)
				}
			}
		}
	})
}
