package bench

import (
	"bytes"
	"io"
	"testing"

	"vdom/internal/metrics"
)

// TestParallelByteIdentical is the parallel engine's core guarantee:
// for every experiment grid, a worker pool of any width produces output —
// rendered tables, metrics snapshots, and Chrome traces — byte-identical
// to the sequential reference execution (Parallel: 1). Run with -race this
// also shakes out data races between cells.
func TestParallelByteIdentical(t *testing.T) {
	type experiment struct {
		name string
		run  func(w io.Writer, o Options)
	}
	experiments := []experiment{
		{"tables", Tables},
		{"chaos", func(w io.Writer, o Options) { ChaosSeed(w, o, 42) }},
		{"fig1", Fig1},
		{"unixbench", UnixBenchOpts},
	}
	if !testing.Short() {
		experiments = append(experiments, experiment{"compare", Compare})
	}
	for _, exp := range experiments {
		exp := exp
		t.Run(exp.name, func(t *testing.T) {
			t.Parallel()
			run := func(workers int) (table, snap, trace []byte) {
				o := Options{Quick: true, Parallel: workers,
					Metrics: metrics.New(), Trace: metrics.NewTrace()}
				var tb, mb, jb bytes.Buffer
				exp.run(&tb, o)
				if err := o.Metrics.WriteJSON(&mb); err != nil {
					t.Fatal(err)
				}
				if err := o.Trace.WriteJSON(&jb); err != nil {
					t.Fatal(err)
				}
				return tb.Bytes(), mb.Bytes(), jb.Bytes()
			}
			t1, m1, j1 := run(1)
			t3, m3, j3 := run(3)
			if !bytes.Equal(t1, t3) {
				t.Errorf("rendered output differs between -parallel 1 and 3:\n--- p1\n%s\n--- p3\n%s", t1, t3)
			}
			if !bytes.Equal(m1, m3) {
				t.Error("metrics snapshots differ between -parallel 1 and 3")
			}
			if !bytes.Equal(j1, j3) {
				t.Error("traces differ between -parallel 1 and 3")
			}
			if len(t1) == 0 {
				t.Error("experiment produced no output")
			}
		})
	}
}

// BenchmarkTablesGrid measures the wall-clock of the full table grid at a
// given pool width; compare Parallel1 vs ParallelN on a multi-core host
// for the engine's speedup (simulated results are width-invariant).
func BenchmarkTablesGrid(b *testing.B) {
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Tables(io.Discard, Options{Parallel: workers})
			}
		}
	}
	b.Run("parallel1", bench(1))
	b.Run("parallelN", bench(0)) // 0 = GOMAXPROCS
}
