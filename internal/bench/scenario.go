package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vdom/internal/metrics"
	"vdom/internal/par"
	"vdom/internal/replay"
	"vdom/internal/scenario"
)

// loadScenario reads and decodes one vdom-scenario/v1 spec file.
func loadScenario(path string) (*scenario.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := scenario.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// Scenario runs a declared vdom-scenario/v1 workload: the spec at
// Options.Scenario is compiled to one deterministic plan per kernel
// (Options.Kernel narrows the sweep to one backend) and every cell runs
// as an isolated System fanned out across the worker pool. Results —
// tables, metrics, and the per-kernel fold digest — are collected in
// cell order, so output is byte-identical for every -parallel value.
// When Options.TraceDir is set, each cell's vdom-trace/v1 recording is
// written there as scenario-<spec>-<kernel>-p<phase>-s<step>.trace.
func Scenario(w io.Writer, o Options) error {
	if o.Scenario == "" {
		return fmt.Errorf("bench: the scenario experiment needs -scenario <spec.json>")
	}
	spec, err := loadScenario(o.Scenario)
	if err != nil {
		return err
	}
	kernels, err := scenario.Kernels(spec, o.Kernel)
	if err != nil {
		return err
	}
	record := o.TraceDir != ""
	if record {
		if err := os.MkdirAll(o.TraceDir, 0o755); err != nil {
			return err
		}
	}

	for _, kern := range kernels {
		plan, err := scenario.Compile(spec, kern)
		if err != nil {
			return err
		}
		if o.Quick {
			plan.Quick()
		}

		type cellS struct {
			res *scenario.CellResult
			err error
			bin []byte
			reg *metrics.Registry
		}
		jobs := make([]func() cellS, len(plan.Cells))
		for i := range plan.Cells {
			c := plan.Cells[i]
			jobs[i] = func() cellS {
				var sc cellS
				sc.reg, _ = o.newCellSinks()
				sc.res, sc.err = scenario.RunCell(c, scenario.CellOptions{Metrics: sc.reg, Record: record})
				if sc.err == nil && record {
					sc.bin = replay.Encode(sc.res.Trace)
				}
				return sc
			}
		}
		cells := par.Map(o.workers(), jobs)

		t := &Table{
			Title: fmt.Sprintf("Scenario %s × %s: %d cells, seed %#x (%s)",
				spec.Name, kern, len(plan.Cells), spec.Seed, scenario.FormatName),
			Columns: []string{"phase", "step", "clients", "ops", "activate", "churn", "reuse", "faults", "injected", "cycles", "cyc/op", "digest"},
		}
		// fold chains every cell's end-state digest in plan order — the
		// single value the determinism regression compares across
		// parallel widths and reruns.
		fold := replay.DigestString(spec.Name + "|" + kern)
		for i, sc := range cells {
			c := plan.Cells[i]
			if sc.err != nil {
				return fmt.Errorf("scenario %s × %s, cell %s/%d: %v", spec.Name, kern, c.Phase, c.Step, sc.err)
			}
			r := sc.res
			if record {
				name := fmt.Sprintf("scenario-%s-%s-p%d-s%d.trace", spec.Name, kern, c.PhaseIndex, c.Step)
				if err := os.WriteFile(filepath.Join(o.TraceDir, name), sc.bin, 0o644); err != nil {
					return err
				}
			}
			t.Row(c.Phase, fmt.Sprint(c.Step), fmt.Sprint(c.Clients), fmt.Sprint(r.Ops),
				fmt.Sprint(r.Activations), fmt.Sprint(r.Churns), fmt.Sprint(r.Reuses),
				fmt.Sprint(r.Faulted), fmt.Sprint(r.Injected), fmt.Sprint(r.Cycles),
				f1(float64(r.Cycles)/float64(r.Ops)), fmt.Sprintf("%016x", r.EndDigest))
			fold = fold*1099511628211 ^ r.EndDigest
			o.Metrics.Add("bench/total-cycles", r.Cycles)
			o.Metrics.Merge(sc.reg)
		}
		o.Render(w, t)
		fmt.Fprintf(w, "%s × %s digest: %016x\n\n", spec.Name, kern, fold)
	}
	return nil
}
