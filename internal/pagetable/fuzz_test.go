package pagetable

import "testing"

// FuzzTableOps drives a page table with an arbitrary operation tape and
// checks the structural invariants the rest of the system depends on.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 0, 0, 16, 16, 32, 255, 1, 9})
	f.Add([]byte{5, 4, 3, 2, 1, 0, 100, 200, 50, 60})
	f.Fuzz(func(t *testing.T, tape []byte) {
		pt := New()
		ref := map[uint64]PTE{} // vpn → expected
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i], tape[i+1]
			vpn := uint64(arg) % 2048
			a := VAddr(vpn << PageShift)
			switch op % 5 {
			case 0:
				pte := PTE{Frame: Frame(arg), Present: true,
					Writable: op&0x80 != 0, Pdom: Pdom(op % 16)}
				pt.Map(a, pte.Frame, pte.Writable, pte.Pdom)
				ref[vpn] = pte
			case 1:
				had := ref[vpn].Present
				delete(ref, vpn)
				if pt.Unmap(a) != had {
					t.Fatalf("Unmap(%#x) disagreement", uint64(a))
				}
			case 2:
				d := Pdom(op % 16)
				if pt.SetPdom(a, d) {
					e := ref[vpn]
					if !e.Present {
						t.Fatalf("SetPdom succeeded on absent page %#x", uint64(a))
					}
					e.Pdom = d
					ref[vpn] = e
				} else if ref[vpn].Present {
					t.Fatalf("SetPdom failed on present page %#x", uint64(a))
				}
			case 3:
				pt.DisablePMD(a)
			case 4:
				pt.EnablePMD(a)
			}
		}
		// Present() equals the reference count.
		if pt.Present() != len(ref) {
			t.Fatalf("Present = %d, ref = %d", pt.Present(), len(ref))
		}
		// Every reference entry is found by a walk (modulo PMD
		// disables, which hide but never lose entries).
		for vpn, want := range ref {
			a := VAddr(vpn << PageShift)
			pt.EnablePMD(a) // unhide for verification
			wr := pt.Walk(a)
			if !wr.Present || wr.PTE != want {
				t.Fatalf("walk(%#x) = %+v, want %+v", uint64(a), wr, want)
			}
		}
	})
}
