package chaos_test

import (
	"errors"
	"fmt"
	"testing"

	"vdom/internal/chaos"
	"vdom/internal/snapshot"
)

func TestPressureDeterministicReplay(t *testing.T) {
	run := func() (string, string) {
		p := chaos.NewPressure(chaos.PressureConfig{Seed: 42, SnapWriteFail: 0.3, SnapCorrupt: 0.3})
		data := []byte{1, 2, 3, 4}
		for op := 1; op <= 200; op++ {
			p.FailCheckpointWrite(op)
			p.CorruptCheckpoint(op, data)
		}
		return fmt.Sprint(p.Injected()), fmt.Sprint(p.Events())
	}
	i1, e1 := run()
	i2, e2 := run()
	if i1 != i2 || e1 != e2 {
		t.Fatalf("same seed produced different fault streams:\n%s\n%s", i1, i2)
	}
	p3 := chaos.NewPressure(chaos.PressureConfig{Seed: 43, SnapWriteFail: 0.3, SnapCorrupt: 0.3})
	for op := 1; op <= 200; op++ {
		p3.FailCheckpointWrite(op)
	}
	if fmt.Sprint(p3.Injected()) == i1 {
		t.Error("different seed replayed the identical fault stream")
	}
}

func TestPressureZeroConfigInjectsNothing(t *testing.T) {
	p := chaos.NewPressure(chaos.PressureConfig{Seed: 7})
	data := []byte{9, 9}
	for op := 1; op <= 100; op++ {
		if p.FailCheckpointWrite(op) || p.CorruptCheckpoint(op, data) {
			t.Fatal("zero-probability pressure injected a fault")
		}
	}
	if len(p.Injected()) != 0 || len(p.Events()) != 0 {
		t.Errorf("zero config logged faults: %v", p.Events())
	}
	if data[0] != 9 || data[1] != 9 {
		t.Error("data mutated without a corruption fault")
	}
	// A nil source is a valid no-op.
	var nilP *chaos.Pressure
	if nilP.Injected() == nil || nilP.Events() != nil {
		t.Error("nil Pressure accessors not nil-safe")
	}
}

// TestPressureCorruptionIsCRCDetectable pins the coupling the ring
// fallback depends on: a pressure-corrupted checkpoint must be rejected
// by the container's CRC check, typed ErrBadChecksum.
func TestPressureCorruptionIsCRCDetectable(t *testing.T) {
	s := chaos.StartSoak(chaos.SoakConfig{Chaos: chaos.Config{Seed: 5}, Ops: 50, Record: true})
	for s.Step() {
	}
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Decode(snap); err != nil {
		t.Fatalf("pristine checkpoint does not decode: %v", err)
	}
	p := chaos.NewPressure(chaos.PressureConfig{Seed: 1, SnapCorrupt: 1})
	if !p.CorruptCheckpoint(10, snap) {
		t.Fatal("probability-1 corruption did not strike")
	}
	_, err = snapshot.Decode(snap)
	if !errors.Is(err, snapshot.ErrBadChecksum) {
		t.Fatalf("corrupted checkpoint error %v is not ErrBadChecksum", err)
	}
	if got := p.Injected()["snap-corrupt"]; got != 1 {
		t.Errorf("snap-corrupt counter = %d, want 1", got)
	}
}
