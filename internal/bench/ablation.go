package bench

import (
	"fmt"
	"io"

	"vdom/internal/cycles"
	"vdom/internal/workload"
)

// Ablations sweeps the design choices DESIGN.md calls out, quantifying
// what each §5.5 optimization buys, and projects the 32-domain Power
// configuration.
func Ablations(w io.Writer, o Options) {
	t := &Table{
		Title:   "Ablations: what each VDom design choice buys (X86)",
		Columns: []string{"design choice", "configuration", "avg activation cycles"},
	}

	rounds := o.patternRounds()
	evictCell := func(mut func(*workload.PatternConfig)) float64 {
		cfg := workload.PatternConfig{
			Arch: cycles.X86, System: workload.PatternVDomEvict,
			Pattern: workload.Sequential, NumVdoms: 16, Rounds: rounds,
		}
		if mut != nil {
			mut(&cfg)
		}
		return workload.RunPattern(cfg).AvgCycles
	}
	// HLRU vs strict LRU: the last-pdom heuristic keeps cyclic working
	// sets cheap (only the overflow vdoms thrash).
	t.Row("HLRU eviction", "on (default)", f0(evictCell(nil)))
	t.Row("HLRU eviction", "strict LRU",
		f0(evictCell(func(c *workload.PatternConfig) { c.StrictLRU = true })))

	// PMD-disable fast path for 2 MiB evictions.
	t.Row("PMD-disable eviction", "on (default)",
		f0(evictCell(func(c *workload.PatternConfig) { c.NumVdoms = 29 })))
	t.Row("PMD-disable eviction", "off (per-PTE retag)",
		f0(evictCell(func(c *workload.PatternConfig) { c.NumVdoms = 29; c.NoPMDOpt = true })))

	// ASID tagging: without it, every pgd switch flushes the TLB and the
	// switched-to working set refaults through page walks — visible in
	// the access cost following each activation, so this row reports
	// activation + access cycles.
	switchTotal := func(mut func(*workload.PatternConfig)) float64 {
		cfg := workload.PatternConfig{
			Arch: cycles.X86, System: workload.PatternVDomSecure,
			Pattern: workload.SwitchTriggering, NumVdoms: 64, Rounds: rounds,
		}
		if mut != nil {
			mut(&cfg)
		}
		r := workload.RunPattern(cfg)
		return r.AvgCycles + r.AvgTouchCycles
	}
	t.Row("ASID tagging", "on (default)", f0(switchTotal(nil)))
	t.Row("ASID tagging", "off (flush per switch)",
		f0(switchTotal(func(c *workload.PatternConfig) { c.NoASID = true })))

	// Range-flush threshold: small thresholds favour ASID flushes for
	// 512-page vdoms; very large ones pay per-page invalidations.
	for _, thr := range []uint64{8, 64, 1024} {
		thr := thr
		t.Row("range-flush threshold", fmt.Sprintf("%d pages", thr),
			f0(evictCell(func(c *workload.PatternConfig) {
				c.NumVdoms = 29
				c.FlushThresholdPages = thr
			})))
	}

	// Secure vs fast API (call-gate cost).
	secure := workload.RunPattern(workload.PatternConfig{
		Arch: cycles.X86, System: workload.PatternVDomSecure,
		Pattern: workload.Sequential, NumVdoms: 4, Rounds: rounds}).AvgCycles
	fast := workload.RunPattern(workload.PatternConfig{
		Arch: cycles.X86, System: workload.PatternVDomFast,
		Pattern: workload.Sequential, NumVdoms: 4, Rounds: rounds}).AvgCycles
	t.Row("call gate", "secure (default)", f0(secure))
	t.Row("call gate", "fast (no gate)", f0(fast))
	o.Render(w, t)

	// VDS switch vs eviction on the PMO workload (Figure 7's comparison
	// in one line).
	fmt.Fprintln(w)
	t2 := &Table{
		Title:   "VDS switch vs eviction on the PMO workload (4 threads)",
		Columns: []string{"strategy", "overhead"},
	}
	base := workload.RunPMO(workload.PMOConfig{Arch: cycles.X86, System: workload.Original, Threads: 4, OpsPerThread: o.pmoOps()})
	for _, m := range []struct {
		name string
		mode workload.PMOMode
	}{{"VDS switch (nas=6)", workload.PMOSwitch}, {"eviction (nas=1)", workload.PMOEvict}} {
		r := workload.RunPMO(workload.PMOConfig{Arch: cycles.X86, System: workload.VDom, Mode: m.mode, Threads: 4, OpsPerThread: o.pmoOps()})
		t2.Row(m.name, pct(float64(r.Makespan)/float64(base.Makespan)-1))
	}
	o.Render(w, t2)

	// Keep-alive extension: with connection reuse (ab -k) the handshake
	// and its key domains amortize, shrinking VDom's relative overhead
	// even further.
	fmt.Fprintln(w)
	t4 := &Table{
		Title:   "Extension: httpd connection reuse (keep-alive, 16KB, 8 clients)",
		Columns: []string{"connections", "original req/s", "VDom req/s", "overhead"},
	}
	for _, ka := range []bool{false, true} {
		label := "per-request"
		if ka {
			label = "keep-alive"
		}
		base := workload.RunHttpd(workload.HttpdConfig{Arch: cycles.X86, System: workload.Original,
			Clients: 8, RequestsPerClient: o.httpdRequests(), FileBytes: 16384, KeepAlive: ka})
		prot := workload.RunHttpd(workload.HttpdConfig{Arch: cycles.X86, System: workload.VDom,
			Clients: 8, RequestsPerClient: o.httpdRequests(), FileBytes: 16384, KeepAlive: ka})
		t4.Row(label, f0(base.ReqPerSec), f0(prot.ReqPerSec),
			pct(float64(prot.Makespan)/float64(base.Makespan)-1))
	}
	o.Render(w, t4)

	// Power projection: 32 hardware domains halve the virtualization
	// pressure — 29 vdoms fit one address space outright.
	fmt.Fprintln(w)
	t3 := &Table{
		Title:   "Projection: 32-domain hardware (IBM Power model)",
		Columns: []string{"# of vdoms", "X86 (16 domains)", "Power (32 domains)"},
	}
	for _, n := range []int{15, 29, 64} {
		cell := func(arch cycles.Arch) string {
			r := workload.RunPattern(workload.PatternConfig{
				Arch: arch, System: workload.PatternVDomSecure,
				Pattern: workload.SwitchTriggering, NumVdoms: n, Rounds: rounds,
			})
			return f0(r.AvgCycles)
		}
		t3.Row(fmt.Sprint(n), cell(cycles.X86), cell(cycles.Power))
	}
	o.Render(w, t3)
}
