// Package par is the worker-pool fan-out engine behind the parallel
// experiment harness (vdom-bench -parallel N).
//
// The paper's evaluation is an embarrassingly parallel grid of independent
// deterministic cells: every Table 3/4/5 measurement, every figure row,
// and every chaos-soak shard boots its own isolated simulated machine.
// par schedules those cells across OS threads while keeping the work
// product bit-for-bit identical to a sequential run: jobs are indexed,
// each job writes only to its own result slot, and callers assemble
// results in index order. Worker count therefore affects wall-clock time
// only, never output — the property the bench layer's byte-identical
// output guarantee rests on.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// JobPanic is the panic value Do re-raises when a job panics: the
// original value wrapped with the failing job's index, so supervisors
// (the fleet coordinator, the serve shard guard) can attribute the
// failure to one cell instead of one anonymous pool. A panic that is
// already a JobPanic is re-raised unchanged, preserving the innermost
// attribution through nested pools.
type JobPanic struct {
	// Index is the failing job's index in the Do/Map fan-out.
	Index int
	// Value is the original panic value.
	Value any
}

// Error renders the wrapped panic; JobPanic satisfies error so recovered
// values flow into error-shaped supervision paths unchanged.
func (p JobPanic) Error() string {
	return fmt.Sprintf("par: job %d panicked: %v", p.Index, p.Value)
}

// wrap boxes a recovered panic value with its job index, passing
// through values that already carry one.
func wrap(i int, r any) any {
	if _, ok := r.(JobPanic); ok {
		return r
	}
	return JobPanic{Index: i, Value: r}
}

// Workers normalizes a -parallel flag value: n > 0 is used as-is, while
// n <= 0 selects runtime.GOMAXPROCS(0) (one worker per schedulable CPU).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs job(0), ..., job(n-1) across at most `workers` goroutines and
// returns when all have finished. workers <= 1 (or n <= 1) runs strictly
// sequentially on the calling goroutine, in index order, with no
// goroutines spawned — the reference execution parallel runs must match.
//
// Jobs must be independent: they may not share mutable state, and each
// must confine its writes to its own result slot. A panicking job stops
// the pool and the panic value is re-raised on the calling goroutine once
// every in-flight job has returned, mirroring sequential behaviour; the
// re-raised value is a JobPanic wrapping the original with the failing
// index, at every pool width including the sequential one.
func Do(workers, n int, job func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			runWrapped(i, job)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				stop := func() (stop bool) {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = wrap(i, r)
								// Park the index cursor past the end so
								// idle workers drain instead of starting
								// doomed work.
								next.Store(int64(n))
							}
							panicMu.Unlock()
							stop = true
						}
					}()
					job(i)
					return false
				}()
				if stop {
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// runWrapped runs job(i) on the calling goroutine, re-raising any panic
// wrapped as a JobPanic so the sequential path attributes failures
// exactly like the pooled one.
func runWrapped(i int, job func(int)) {
	defer func() {
		if r := recover(); r != nil {
			panic(wrap(i, r))
		}
	}()
	job(i)
}

// Map runs the jobs concurrently on at most `workers` goroutines and
// returns their results in input order, regardless of completion order.
// It is Do with a result slot per job.
func Map[T any](workers int, jobs []func() T) []T {
	out := make([]T, len(jobs))
	Do(workers, len(jobs), func(i int) { out[i] = jobs[i]() })
	return out
}
