package core

import (
	"errors"
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/sim"
)

// TestVdomSpanningMultipleAreas protects three disjoint regions under ONE
// vdom and verifies that activation, eviction, and remap treat them as a
// unit (the VDT chains multiple areas per vdom, §5.3).
func TestVdomSpanningMultipleAreas(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 1); err != nil {
		t.Fatal(err)
	}
	d, _ := f.m.AllocVdom(false)
	var bases []pagetable.VAddr
	for i := 0; i < 3; i++ {
		base := f.next
		f.next += 4 * pagetable.PMDSize
		if _, err := task.Mmap(base, 2*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := f.m.Mprotect(task, base, 2*pg, d); err != nil {
			t.Fatal(err)
		}
		bases = append(bases, base)
	}
	if got := len(f.m.VDT().Areas(d)); got != 3 {
		t.Fatalf("VDT areas = %d, want 3", got)
	}
	grant(t, f.m, task, d, VPermReadWrite)
	for _, b := range bases {
		if _, err := task.Access(b, true); err != nil {
			t.Fatalf("area at %#x: %v", uint64(b), err)
		}
		if _, err := task.Access(b+pg, true); err != nil {
			t.Fatal(err)
		}
	}
	grant(t, f.m, task, d, VPermNone)

	// Force d's eviction by cycling enough other vdoms through.
	for i := 0; i < usablePdoms+2; i++ {
		o, ob := f.newVdomRegion(t, task, 1, false)
		grant(t, f.m, task, o, VPermReadWrite)
		if _, err := task.Access(ob, true); err != nil {
			t.Fatal(err)
		}
		grant(t, f.m, task, o, VPermNone)
	}
	if f.m.VDROf(task).Current().Mapped(d) {
		t.Fatal("multi-area vdom survived the cycling; test premise broken")
	}
	// While evicted, every area is unreachable...
	grantErrCheck := func(b pagetable.VAddr, want bool) {
		t.Helper()
		_, err := task.Access(b, false)
		if want != (err == nil) {
			t.Fatalf("access %#x: err=%v, want ok=%v", uint64(b), err, want)
		}
		if err != nil && !errors.Is(err, kernel.ErrSigsegv) {
			t.Fatalf("wrong error type: %v", err)
		}
	}
	for _, b := range bases {
		grantErrCheck(b, false)
	}
	// ...and reactivation restores all three at once.
	grant(t, f.m, task, d, VPermRead)
	for _, b := range bases {
		grantErrCheck(b, true)
		grantErrCheck(b+pg, true)
	}
}

// TestSoakFullStack runs a long mixed workload over the whole stack (only
// in non-short mode): three threads, hundreds of domains, every permission
// type, periodic frees, reclaim pressure, and invariant checks.
func TestSoakFullStack(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	f := newFixture(t, cycles.X86, 4, DefaultPolicy())
	m := f.m
	rng := sim.NewRand(0x50a6)
	tasks := []*kernel.Task{f.proc.NewTask(0), f.proc.NewTask(1), f.proc.NewTask(2)}
	for i, task := range tasks {
		if _, err := m.VdrAlloc(task, 1+i); err != nil {
			t.Fatal(err)
		}
	}
	type entry struct {
		d     VdomID
		b     pagetable.VAddr
		alive bool
	}
	var pool []*entry
	mk := func(task *kernel.Task) {
		base := f.next
		f.next += 4 * pagetable.PMDSize
		if _, err := task.Mmap(base, pg, true); err != nil {
			t.Fatal(err)
		}
		d, _ := m.AllocVdom(rng.Intn(5) == 0)
		if _, err := m.Mprotect(task, base, pg, d); err != nil {
			t.Fatal(err)
		}
		pool = append(pool, &entry{d: d, b: base, alive: true})
	}
	for i := 0; i < 20; i++ {
		mk(tasks[i%3])
	}
	perms := []VPerm{VPermNone, VPermRead, VPermReadWrite, VPermPinned}
	const steps = 6000
	for step := 0; step < steps; step++ {
		task := tasks[rng.Intn(3)]
		switch rng.Intn(12) {
		case 0:
			if len(pool) < 300 {
				mk(task)
			}
		case 1: // free a random live vdom
			e := pool[rng.Intn(len(pool))]
			if e.alive {
				if _, err := m.FreeVdom(e.d); err != nil {
					t.Fatalf("step %d: free: %v", step, err)
				}
				e.alive = false
			}
		case 2: // memory pressure
			f.proc.ReclaimFrames(task.CoreID(), 16)
		default:
			e := pool[rng.Intn(len(pool))]
			perm := perms[rng.Intn(4)]
			_, err := m.WrVdr(task, e.d, perm)
			if e.alive && err != nil {
				t.Fatalf("step %d: wrvdr live vdom: %v", step, err)
			}
			if !e.alive && !errors.Is(err, ErrFreedVdom) {
				t.Fatalf("step %d: wrvdr freed vdom = %v", step, err)
			}
			if e.alive {
				write := rng.Intn(2) == 1
				vdr := m.VDROf(task)
				want := vdr.perms.get(e.d).Allows(write)
				_, aerr := task.Access(e.b, write)
				if want != (aerr == nil) {
					t.Fatalf("step %d: access mismatch (perm %v write %v err %v)",
						step, vdr.perms.get(e.d), write, aerr)
				}
			}
		}
		if step%500 == 0 {
			checkInvariants(t, m)
		}
	}
	checkInvariants(t, m)
	if m.Stats.Evictions == 0 || m.Stats.DomainFaults == 0 {
		t.Errorf("soak too tame: %+v", m.Stats)
	}
}
