package core

import (
	"errors"
	"fmt"
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/sim"
)

// checkInvariants asserts the structural invariants of the whole VDom
// instance; called after every step of the random-operation test.
func checkInvariants(t *testing.T, m *Manager) {
	t.Helper()

	// VDS domain maps are internally consistent bijections over the
	// usable pdoms.
	for _, vds := range m.vdses {
		seen := map[VdomID]bool{}
		mappedCount := 0
		for p := 0; p < vds.numPdoms; p++ {
			e := vds.domainMap[p]
			if !e.used {
				continue
			}
			if p < firstUsablePdom {
				t.Fatalf("VDS %d: reserved pdom %d in use by vdom %d", vds.id, p, e.vdom)
			}
			mappedCount++
			if seen[e.vdom] {
				t.Fatalf("VDS %d: vdom %d mapped to two pdoms", vds.id, e.vdom)
			}
			seen[e.vdom] = true
			if got, ok := vds.vdomPdom[e.vdom]; !ok || got != pagetable.Pdom(p) {
				t.Fatalf("VDS %d: inverse map broken for vdom %d (pdom %d vs %d,%v)",
					vds.id, e.vdom, p, got, ok)
			}
			if e.threads < 0 {
				t.Fatalf("VDS %d: negative #thread for vdom %d", vds.id, e.vdom)
			}
		}
		if len(vds.vdomPdom) != mappedCount {
			t.Fatalf("VDS %d: vdomPdom has %d entries, domain map %d",
				vds.id, len(vds.vdomPdom), mappedCount)
		}
	}

	// Every VDR's residency and register image are consistent.
	for task, vdr := range m.vdrs {
		if vdr.current == nil {
			t.Fatalf("task %d: nil current VDS", task.TID())
		}
		if !vdr.current.threads[task] {
			t.Fatalf("task %d not resident in its current VDS", task.TID())
		}
		if !contains(vdr.vdses, vdr.current) {
			t.Fatalf("task %d: current VDS not in attachment list", task.TID())
		}
		if len(vdr.vdses) > vdr.nas {
			t.Fatalf("task %d: %d attached VDSes exceed nas=%d",
				task.TID(), len(vdr.vdses), vdr.nas)
		}
		// Register image matches VDR ⨯ domain map.
		raw := task.SavedPerm()
		var want Manager
		_ = want
		reg := rebuildRegister(vdr)
		if raw != reg {
			t.Fatalf("task %d: register image %#x, want %#x", task.TID(), raw, reg)
		}
		// Residency is exclusive.
		for _, vds := range m.vdses {
			if vds != vdr.current && vds.threads[task] {
				t.Fatalf("task %d resident in two VDSes", task.TID())
			}
		}
	}

	// #thread counters equal the recount from resident VDRs.
	for _, vds := range m.vdses {
		for p := firstUsablePdom; p < vds.numPdoms; p++ {
			e := vds.domainMap[p]
			if !e.used {
				continue
			}
			want := 0
			for task := range vds.threads {
				if vdr := m.vdrs[task]; vdr != nil && vdr.perms.get(e.vdom).Accessible() {
					want++
				}
			}
			if e.threads != want {
				t.Fatalf("VDS %d vdom %d: #thread=%d, recount=%d",
					vds.id, e.vdom, e.threads, want)
			}
		}
	}
}

// rebuildRegister mirrors syncRegister's construction for verification.
func rebuildRegister(vdr *VDR) uint64 {
	var r regImage
	r.set(uint8(AccessNeverPdom), false, true)
	vds := vdr.current
	for p := firstUsablePdom; p < vds.numPdoms; p++ {
		e := vds.domainMap[p]
		if e.used {
			switch vdr.perms.get(e.vdom) {
			case VPermReadWrite:
				r.set(uint8(p), false, false)
			case VPermRead:
				r.set(uint8(p), true, false)
			default:
				r.set(uint8(p), false, true)
			}
		} else {
			r.set(uint8(p), false, true)
		}
	}
	return r.bits
}

type regImage struct{ bits uint64 }

func (r *regImage) set(p uint8, wd, ad bool) {
	var f uint64
	if ad {
		f = 0b01
	} else if wd {
		f = 0b10
	}
	shift := 2 * uint64(p)
	r.bits = r.bits&^(0b11<<shift) | f<<shift
}

// TestRandomOperationInvariants drives the whole system with a long random
// sequence of API calls and accesses from multiple threads, checking every
// structural invariant after each step and validating that access outcomes
// always match the calling thread's VDR.
func TestRandomOperationInvariants(t *testing.T) {
	mach := newFixture(t, cycles.X86, 4, DefaultPolicy())
	m := mach.m
	rng := sim.NewRand(0xfeed)

	const numTasks = 4
	tasks := make([]*kernel.Task, numTasks)
	for i := range tasks {
		tasks[i] = mach.proc.NewTask(i % 4)
		nas := 1 + rng.Intn(4)
		if _, err := m.VdrAlloc(tasks[i], nas); err != nil {
			t.Fatal(err)
		}
	}

	type domInfo struct {
		d    VdomID
		base pagetable.VAddr
	}
	var doms []domInfo
	newDom := func(task *kernel.Task) {
		base := mach.next
		mach.next += 4 * pagetable.PMDSize
		if _, err := task.Mmap(base, pg, true); err != nil {
			t.Fatal(err)
		}
		d, _ := m.AllocVdom(rng.Intn(4) == 0)
		if _, err := m.Mprotect(task, base, pg, d); err != nil {
			t.Fatal(err)
		}
		doms = append(doms, domInfo{d: d, base: base})
	}
	for i := 0; i < 8; i++ {
		newDom(tasks[0])
	}

	perms := []VPerm{VPermNone, VPermRead, VPermReadWrite, VPermPinned}
	const steps = 1500
	for step := 0; step < steps; step++ {
		task := tasks[rng.Intn(numTasks)]
		switch rng.Intn(10) {
		case 0: // allocate a new protected region
			if len(doms) < 80 {
				newDom(task)
			}
		case 1, 2, 3, 4: // permission change
			di := doms[rng.Intn(len(doms))]
			perm := perms[rng.Intn(len(perms))]
			if _, err := m.WrVdr(task, di.d, perm); err != nil && !errors.Is(err, ErrFreedVdom) {
				t.Fatalf("step %d: WrVdr: %v", step, err)
			}
		default: // access and validate outcome against the VDR
			di := doms[rng.Intn(len(doms))]
			write := rng.Intn(2) == 1
			vdr := m.VDROf(task)
			wantAllowed := m.live[di.d] && vdr.perms.get(di.d).Allows(write)
			_, err := task.Access(di.base, write)
			switch {
			case wantAllowed && err != nil:
				t.Fatalf("step %d: task %d denied allowed %v access to vdom %d: %v",
					step, task.TID(), write, di.d, err)
			case !wantAllowed && !errors.Is(err, kernel.ErrSigsegv):
				t.Fatalf("step %d: task %d performed forbidden access to vdom %d (err=%v)",
					step, task.TID(), di.d, err)
			}
		}
		if step%25 == 0 {
			checkInvariants(t, m)
		}
	}
	checkInvariants(t, m)

	// The system exercised its interesting machinery during the run.
	st := m.Stats
	summary := fmt.Sprintf("%+v", st)
	if st.WrVdrCalls == 0 || st.DomainFaults == 0 {
		t.Errorf("run too tame: %s", summary)
	}
	if st.Evictions == 0 && st.VDSSwitches == 0 && st.Migrations == 0 {
		t.Errorf("no overflow machinery exercised: %s", summary)
	}
}

// TestRandomOperationInvariantsARM repeats a shorter run on the ARM model.
func TestRandomOperationInvariantsARM(t *testing.T) {
	f := newFixture(t, cycles.ARM, 4, DefaultPolicy())
	m := f.m
	rng := sim.NewRand(0xa)
	task := f.proc.NewTask(0)
	if _, err := m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	var doms []VdomID
	var bases []pagetable.VAddr
	for i := 0; i < 30; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		doms = append(doms, d)
		bases = append(bases, b)
	}
	for step := 0; step < 400; step++ {
		i := rng.Intn(len(doms))
		grant(t, m, task, doms[i], VPermReadWrite)
		if _, err := task.Access(bases[i], true); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		grant(t, m, task, doms[i], VPermNone)
		if step%50 == 0 {
			checkInvariants(t, m)
		}
	}
	checkInvariants(t, m)
}
