package dpti

import (
	"sort"

	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

// Checkpoint capture and restore (vdom-snap/v1). Materialized domain
// tables live in the address space's synchronization set, so the mm
// section carries their contents and the kernel section their ASIDs;
// this image only records the linkage (domain → table id → ASID) plus
// the manager's own bookkeeping.

// AreaSnap is one serialized protected area.
type AreaSnap struct {
	Start  pagetable.VAddr
	Length uint64
}

// DomainSnap is the serializable image of one domain's metadata.
type DomainSnap struct {
	ID      DomainID
	Areas   []AreaSnap
	TableID int // stable table id (see mm.TableID); -1 when not live
	ASID    tlb.ASID
	Live    bool
	LastUse uint64
}

// CurrentSnap records which domain one task has entered.
type CurrentSnap struct {
	TID int
	Dom DomainID
}

// Snap is the serializable image of a Manager.
type Snap struct {
	NextID    DomainID
	Domains   []DomainSnap  // ascending ID; freed slots omitted
	Current   []CurrentSnap // ascending TID
	MaxTables int
	Clock     uint64
	Stats     Stats
}

// Snap captures the manager's image. tableID maps each materialized
// domain's page table to its stable id.
func (m *Manager) Snap(tableID func(*pagetable.Table) int) Snap {
	s := Snap{
		NextID:    m.nextID,
		MaxTables: m.maxTables,
		Clock:     m.clock,
		Stats:     m.Stats,
	}
	for _, d := range m.domains {
		if d == nil {
			continue
		}
		ds := DomainSnap{ID: d.id, TableID: -1, ASID: d.asid, Live: d.live, LastUse: d.lastUse}
		if d.live {
			ds.TableID = tableID(d.table)
		}
		for _, a := range d.areas {
			ds.Areas = append(ds.Areas, AreaSnap{Start: a.start, Length: a.length})
		}
		s.Domains = append(s.Domains, ds)
	}
	for t, d := range m.current {
		s.Current = append(s.Current, CurrentSnap{TID: tapTID(t), Dom: d})
	}
	sort.Slice(s.Current, func(i, j int) bool { return s.Current[i].TID < s.Current[j].TID })
	return s
}

// LoadSnap restores a captured image onto a freshly attached manager.
// table resolves stable table ids to the restored address space's
// tables; task resolves TIDs to restored tasks (TID 0 must resolve to
// nil). The tables themselves — and the ASID live set — are restored by
// the mm and kernel sections, so only linkage is rebuilt here.
func (m *Manager) LoadSnap(s Snap, table func(id int) *pagetable.Table, task func(tid int) *kernel.Task) {
	if len(m.domains) != 0 {
		panic("dpti: LoadSnap on a non-fresh manager")
	}
	m.nextID = s.NextID
	m.maxTables = s.MaxTables
	m.clock = s.Clock
	m.Stats = s.Stats
	m.domains = make([]*domain, int(s.NextID)-1)
	for _, ds := range s.Domains {
		d := &domain{id: ds.ID, asid: ds.ASID, live: ds.Live, lastUse: ds.LastUse}
		if ds.Live {
			d.table = table(ds.TableID)
			m.numLive++
		}
		for _, a := range ds.Areas {
			d.areas = append(d.areas, area{start: a.Start, length: a.Length})
		}
		m.domains[ds.ID-1] = d
	}
	for _, c := range s.Current {
		m.current[task(c.TID)] = c.Dom
	}
}
