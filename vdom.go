// Package vdom is a faithful, fully simulated reproduction of VDom — the
// fast and unlimited memory-domain virtualization system of Yuan et al.
// (ASPLOS 2023) — as an embeddable Go library.
//
// Hardware memory-domain primitives (Intel MPK, ARM Memory Domain) offer
// cheap in-process isolation but only 16 domains. VDom virtualizes them
// into an unlimited supply of "virtual domains" (vdoms) by grouping
// threads into separate ASID-tagged address spaces (VDSes), each
// contributing a fresh set of hardware domains, and by balancing page
// global directory switches against HLRU domain evictions.
//
// Because Go's runtime cannot host real per-thread page tables or PKRU
// state, the library runs on a cycle-accounted simulated machine: real
// multi-level page tables, ASID-tagged TLBs, per-core permission
// registers, and a simulated kernel. Protection decisions are real — an
// access the hardware would forbid returns ErrSigsegv — and every
// operation reports the cycles the real system would spend, calibrated
// against the paper's measurements.
//
// # Quick start
//
//	sys := vdom.NewSystem(vdom.Config{Arch: vdom.X86, Cores: 4})
//	p := sys.NewProcess(vdom.DefaultPolicy())
//	t := p.NewThread(0)
//
//	buf, _ := t.Mmap(16 * vdom.PageSize) // map some memory
//	t.AllocVDR(4)                        // get a permission register
//	secret, _ := p.AllocDomain(false)    // unlimited vdoms
//	p.ProtectRange(t, buf, 4*vdom.PageSize, secret)
//
//	t.WriteVDR(secret, vdom.ReadWrite) // open the domain ...
//	t.Store(buf)                       // ... access it ...
//	t.WriteVDR(secret, vdom.NoAccess)  // ... and close it again.
//
//	if err := t.Load(buf); err != nil { /* SIGSEGV: domain is closed */ }
package vdom

import (
	"fmt"

	"vdom/internal/backend"
	"vdom/internal/chaos"
	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/epk"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

// PageSize is the protection granularity in bytes.
const PageSize = pagetable.PageSize

// Arch selects the simulated architecture.
type Arch = cycles.Arch

// Supported architectures.
const (
	// X86 models an Intel Xeon with MPK (user-space PKRU writes, PCID).
	X86 = cycles.X86
	// ARM models a 32-bit ARM core with Memory Domains (kernel-mediated
	// DACR writes, ASIDs).
	ARM = cycles.ARM
	// Power models a projected IBM POWER9 with 32 protection domains
	// (kernel-mediated AMR writes). The paper's prototype does not cover
	// Power; treat results as projections (see DESIGN.md).
	Power = cycles.Power
	// RISCV models a projected RISC-V core with sealable protection keys
	// (user-writable permission register, 16 pdoms, sealing checks on
	// register writes). The paper's prototype does not cover RISC-V;
	// treat results as projections (see DESIGN.md).
	RISCV = cycles.RISCV
)

// Addr is a virtual address in a process's simulated address space.
type Addr = pagetable.VAddr

// Domain is a virtual domain identifier (vdom). Domains are unlimited;
// ids increase monotonically and are never reused.
type Domain = core.VdomID

// Perm is a thread's permission on a domain.
type Perm = core.VPerm

// Permission values, mirroring the paper's API: on top of MPK's triple,
// Pinned is access-disabled but resists HLRU eviction.
const (
	NoAccess  = core.VPermNone
	ReadOnly  = core.VPermRead
	ReadWrite = core.VPermReadWrite
	Pinned    = core.VPermPinned
)

// Cycles is a simulated-cycle count.
type Cycles = cycles.Cost

// Policy re-exports the VDom policy knobs (eviction flavour, call-gate
// profile, flush thresholds).
type Policy = core.Policy

// DefaultPolicy returns the paper-faithful policy: secure call gate, HLRU
// with the PMD fast path, 64-page range-flush threshold, nas budget 4.
func DefaultPolicy() Policy { return core.DefaultPolicy() }

// Error taxonomy: every failure the library returns wraps one of these
// sentinels, so callers branch with errors.Is instead of string matching.
var (
	// ErrSigsegv is returned by Load/Store when the simulated hardware
	// denies the access; it aliases the kernel's signal for errors.Is
	// tests.
	ErrSigsegv = kernel.ErrSigsegv
	// ErrNoResources marks a failed resource acquisition (no evictable
	// domain, transient VDS allocation failure). Degradation paths retry
	// around it; when it reaches the caller the operation can simply be
	// retried later.
	ErrNoResources = core.ErrNoResources
	// ErrExhausted marks terminal resource exhaustion: every fallback was
	// tried and the underlying space (ASIDs, pdoms) is genuinely full.
	ErrExhausted = core.ErrExhausted
	// ErrDegraded marks an operation that failed even after its degraded
	// fallback ran.
	ErrDegraded = core.ErrDegraded
	// ErrDomainCapacity marks a DomainAlloc against a kernel backend
	// whose fixed domain capacity (EPK's EPT groups) is exhausted.
	ErrDomainCapacity = backend.ErrDomainCapacity
)

// ChaosConfig configures the deterministic fault-injection layer; see
// Config.Chaos. The zero value injects nothing.
type ChaosConfig = chaos.Config

// ChaosViolation is one cross-layer incoherence found by System.Audit.
type ChaosViolation = chaos.Violation

// Config describes the simulated platform.
type Config struct {
	// Arch is the simulated architecture (default X86).
	Arch Arch
	// Kernel selects the protection-kernel backend processes attach to:
	// one of Kernels() ("vdom", "libmpk", "epk", "dpti"; default
	// "vdom"). Non-vdom kernels boot an unpatched kernel and expose
	// their domain API through the kernel-neutral Process.Domain*
	// methods; the vdom-specific surface (WriteVDR, ProtectRange, ...)
	// is only available under the default kernel.
	Kernel string
	// Cores is the number of hardware threads (default 4).
	Cores int
	// TLBEntries is the per-core TLB capacity (default 1536).
	TLBEntries int
	// NoASID disables ASID tagging, forcing a full TLB flush on every
	// address-space switch (ablation only).
	NoASID bool
	// SetAssociativeTLB models 8-way set-associative TLBs (conflict
	// misses) instead of fully associative ones.
	SetAssociativeTLB bool
	// VanillaKernel boots the kernel without the VDom patches; only
	// useful for baseline measurements.
	VanillaKernel bool
	// Chaos, when non-nil, attaches the deterministic fault-injection
	// layer with the given per-fault probabilities and seed. The fault
	// hooks are zero-cost when Chaos is nil.
	Chaos *ChaosConfig
	// Metrics enables the unified observability layer: every layer of
	// the system (kernel, domain manager, libmpk when attached)
	// publishes named counters, per-(layer, operation) cycle
	// attribution, and domain-activation cost histograms into one
	// registry, read through System.Metrics or System.MetricsSnapshot.
	// When false the hooks are nil-receiver no-ops and cost nothing.
	Metrics bool
}

// System is one simulated machine plus its booted kernel.
type System struct {
	machine    *hw.Machine
	kernel     *kernel.Kernel
	injector   *chaos.Injector
	metrics    *MetricsRegistry
	procs      []*Process
	kernelName string
	arch       Arch
	cores      int
	vanilla    bool
}

// NewSystem boots a simulated machine. The zero Config is valid (X86,
// 4 cores, default TLB); an invalid Config — anything Config.Validate
// rejects — panics. Use NewSystemWith to get the validation failure as an
// error instead.
func NewSystem(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic("vdom: " + err.Error())
	}
	return newSystem(cfg)
}

// newSystem builds a system from a validated config, applying defaults.
func newSystem(cfg Config) *System {
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if cfg.Kernel == "" {
		cfg.Kernel = "vdom"
	}
	m := hw.NewMachine(hw.Config{
		Arch:           cfg.Arch,
		NumCores:       cfg.Cores,
		TLBCapacity:    cfg.TLBEntries,
		NoASID:         cfg.NoASID,
		SetAssociative: cfg.SetAssociativeTLB,
	})
	// Only the vdom backend runs on the patched kernel; the baselines
	// measure against a vanilla one, exactly as the paper does.
	vdomKernel := !cfg.VanillaKernel && cfg.Kernel == "vdom"
	k := kernel.New(kernel.Config{Machine: m, VDomEnabled: vdomKernel})
	s := &System{
		machine: m, kernel: k,
		kernelName: cfg.Kernel, arch: cfg.Arch, cores: cfg.Cores,
		vanilla: cfg.VanillaKernel,
	}
	if cfg.Metrics {
		s.metrics = metrics.New()
		k.SetMetrics(s.metrics)
	}
	if cfg.Chaos != nil {
		s.injector = chaos.New(*cfg.Chaos)
		s.injector.AttachMachine(m)
		s.injector.AttachKernel(k)
	}
	return s
}

// Injector returns the fault-injection layer, or nil when Config.Chaos
// was nil (advanced use: event log, per-fault counters).
func (s *System) Injector() *chaos.Injector { return s.injector }

// MetricsRegistry is the live metrics registry of the unified
// observability layer: named counters, per-(layer, operation) cycle
// attribution, and cost histograms. A nil registry no-ops on every
// method, so code can publish unconditionally.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a consistent point-in-time copy of a registry,
// serializable as the "vdom-metrics/v1" JSON schema (OBSERVABILITY.md).
type MetricsSnapshot = metrics.Snapshot

// Metrics returns the live registry, or nil when Config.Metrics was
// false. The registry is shared by the kernel and every process created
// on the system.
func (s *System) Metrics() *MetricsRegistry { return s.metrics }

// MetricsSnapshot harvests the pull-based layer counters (TLB, frame
// allocator, page tables, ASID allocator, chaos injector when attached)
// into the registry and returns a consistent snapshot. It returns an
// empty (but valid) snapshot when Config.Metrics was false.
func (s *System) MetricsSnapshot() *MetricsSnapshot {
	if s.metrics == nil {
		return (*MetricsRegistry)(nil).Snapshot()
	}
	sources := []metrics.Source{s.machine, s.kernel}
	for _, p := range s.procs {
		sources = append(sources, p.proc.AS())
	}
	if s.injector != nil {
		sources = append(sources, s.injector)
	}
	s.metrics.Harvest(sources...)
	return s.metrics.Snapshot()
}

// Audit runs the cross-layer consistency auditor over every core's TLB,
// the kernel's ASID state and every process's domain metadata. An empty
// result means the machine is coherent — even under active fault
// injection, thanks to the degradation paths.
func (s *System) Audit() []ChaosViolation {
	var mgrs []*core.Manager
	owners := make(map[tlb.ASID]*pagetable.Table)
	for _, p := range s.procs {
		if p.mgr != nil {
			mgrs = append(mgrs, p.mgr)
			continue
		}
		// Non-vdom processes own their ASIDs outside any core.Manager:
		// task base ASIDs map the shadow table, and DPTI's materialized
		// domains map their private tables.
		for _, t := range p.proc.Tasks() {
			owners[t.BaseASID()] = p.proc.AS().Shadow()
		}
		if d := p.inst.DPTI; d != nil {
			d.OwnedASIDs(func(a tlb.ASID, tb *pagetable.Table) { owners[a] = tb })
		}
	}
	return chaos.AuditOwners(s.machine, s.kernel, owners, mgrs...)
}

// Kernel exposes the simulated kernel (advanced use: scheduler bridges,
// syscall filters).
func (s *System) Kernel() *kernel.Kernel { return s.kernel }

// Cores returns the machine's core count.
func (s *System) Cores() int { return s.machine.NumCores() }

// Process is a process attached to the system's kernel backend. Under
// the default "vdom" kernel the full VDom surface (AllocDomain,
// ProtectRange, WriteVDR, ...) is available; under a baseline kernel
// (Config.Kernel) only the kernel-neutral Domain* methods are — the
// vdom-specific ones panic with a descriptive message.
type Process struct {
	sys  *System
	proc *kernel.Process
	inst *backend.Instance
	ops  backend.DomainOps
	mgr  *core.Manager
	next Addr
}

// NewProcess creates a process attached to the system's kernel backend
// (vdom_init under the default kernel). The policy applies to the vdom
// backend; baselines ignore it.
func (s *System) NewProcess(policy Policy) *Process {
	b, _ := backend.Get(s.kernelName)
	proc := s.kernel.NewProcess()
	inst := &backend.Instance{Machine: s.machine, Kernel: s.kernel, Proc: proc}
	spec := backend.Spec{
		Arch: s.arch, Cores: s.cores,
		VDomKernel:     s.kernelName == "vdom" && !s.vanilla,
		SecureGate:     policy.SecureGate,
		NoPMDOpt:       policy.NoPMDOpt,
		StrictLRU:      policy.StrictLRU,
		FlushThreshold: policy.RangeFlushThresholdPages,
		Nas:            policy.DefaultNas,
		// EPK's fixed capacity when that backend is selected: four EPT
		// groups of hardware keys.
		Domains: 4 * epk.KeysPerEPT,
	}
	if err := b.Attach(inst, spec); err != nil {
		panic("vdom: " + err.Error())
	}
	p := &Process{
		sys:  s,
		proc: proc,
		inst: inst,
		ops:  b.Ops(inst),
		mgr:  inst.Manager,
		next: 0x10_0000_0000,
	}
	if s.injector != nil && p.mgr != nil {
		s.injector.AttachManager(p.mgr)
	}
	b.SetMetrics(inst, s.metrics)
	s.procs = append(s.procs, p)
	return p
}

// KernelName returns the kernel backend this system boots processes on
// (Config.Kernel, defaulted).
func (s *System) KernelName() string { return s.kernelName }

// Manager exposes the underlying domain manager (advanced use: stats,
// call-gate access). It is nil under a non-vdom kernel.
func (p *Process) Manager() *core.Manager { return p.mgr }

// requireVDom guards the vdom-specific surface under baseline kernels.
func (p *Process) requireVDom(op string) {
	if p.mgr == nil {
		panic(fmt.Sprintf(
			"vdom: %s needs the vdom kernel, but the system was booted with kernel %q — use the kernel-neutral Domain* methods",
			op, p.sys.kernelName))
	}
}

// DomainAlloc allocates a domain through the selected kernel backend's
// own primitive (vdom_alloc, pkey_alloc, an EPT slot, dpti_alloc). The
// Domain* methods are the kernel-neutral surface: they behave uniformly
// under every Kernels() entry, which is what makes cross-kernel
// comparisons one-line configuration changes.
func (p *Process) DomainAlloc(t *Thread) (uint64, Cycles, error) {
	return p.ops.Alloc(t.task)
}

// DomainFree releases a backend domain.
func (p *Process) DomainFree(t *Thread, id uint64) (Cycles, error) {
	return p.ops.Free(t.task, id)
}

// DomainProtect assigns the pages of [addr, addr+length) to the domain.
func (p *Process) DomainProtect(t *Thread, addr Addr, length uint64, id uint64) (Cycles, error) {
	return p.ops.Protect(t.task, addr, length, id)
}

// DomainPrepare performs the backend's per-thread setup (VDom's VDR
// allocation; a no-op for backends without per-thread state). n bounds
// how many domains the thread will touch.
func (p *Process) DomainPrepare(t *Thread, n int) (Cycles, error) {
	return p.ops.PrepareThread(t.task, n)
}

// DomainActivate makes the domain accessible to (or current for) the
// thread — a VDR write, a pkey-register write, a VMFUNC switch, or a
// pgd switch, depending on the kernel.
func (p *Process) DomainActivate(t *Thread, id uint64) (Cycles, error) {
	return p.ops.Activate(t.task, id)
}

// DomainDeactivate revokes the thread's access to the domain.
func (p *Process) DomainDeactivate(t *Thread, id uint64) (Cycles, error) {
	return p.ops.Deactivate(t.task, id)
}

// Underlying returns the kernel process (advanced use).
func (p *Process) Underlying() *kernel.Process { return p.proc }

// AllocDomain allocates a fresh virtual domain (vdom_alloc). Marking it
// frequently-accessed biases activation toward in-place eviction rather
// than address-space switches.
func (p *Process) AllocDomain(frequentlyAccessed bool) (Domain, Cycles) {
	p.requireVDom("AllocDomain")
	return p.mgr.AllocVdom(frequentlyAccessed)
}

// FreeDomain releases a domain (vdom_free).
func (p *Process) FreeDomain(d Domain) (Cycles, error) {
	p.requireVDom("FreeDomain")
	return p.mgr.FreeVdom(d)
}

// ProtectRange assigns the pages containing [addr, addr+length) to domain
// d (vdom_mprotect), called by thread t.
func (p *Process) ProtectRange(t *Thread, addr Addr, length uint64, d Domain) (Cycles, error) {
	p.requireVDom("ProtectRange")
	return p.mgr.Mprotect(t.task, addr, length, d)
}

// Stats returns the domain-virtualization event counters.
func (p *Process) Stats() core.Stats {
	p.requireVDom("Stats")
	return p.mgr.Stats
}

// Event is one traced domain-virtualization occurrence (a map, eviction,
// VDS switch, migration, VDS allocation, or free).
type Event = core.Event

// EventKind classifies a traced event.
type EventKind = core.EventKind

// Traced event kinds.
const (
	EventMap      = core.EventMap
	EventEvict    = core.EventEvict
	EventSwitch   = core.EventSwitch
	EventMigrate  = core.EventMigrate
	EventVDSAlloc = core.EventVDSAlloc
	EventFree     = core.EventFree
)

// Trace installs fn as the process's domain-virtualization tracer; pass
// nil to disable. Tracing is free when disabled.
func (p *Process) Trace(fn func(Event)) {
	p.requireVDom("Trace")
	if fn == nil {
		p.mgr.SetTracer(nil)
		return
	}
	p.mgr.SetTracer(core.Tracer(fn))
}

// Thread is one schedulable thread of a process.
type Thread struct {
	proc *Process
	task *kernel.Task
}

// NewThread spawns a thread pinned to the given core. An out-of-range
// coreID panics (deep in the simulated kernel); use NewThreadOn to get a
// typed error validated at the API boundary instead.
func (p *Process) NewThread(coreID int) *Thread {
	t, err := p.NewThreadOn(coreID)
	if err != nil {
		panic("vdom: " + err.Error())
	}
	return t
}

// NewThreadOn spawns a thread pinned to the given core, returning a
// *CoreRangeError (matchable with errors.As) when coreID is not a valid
// core of the system.
func (p *Process) NewThreadOn(coreID int) (*Thread, error) {
	if n := p.sys.Cores(); coreID < 0 || coreID >= n {
		return nil, &CoreRangeError{Core: coreID, Cores: n}
	}
	return &Thread{proc: p, task: p.proc.NewTask(coreID)}, nil
}

// Task exposes the kernel task (advanced use: scheduler bridges).
func (t *Thread) Task() *kernel.Task { return t.task }

// Mmap maps `length` bytes (page-aligned up) of fresh anonymous memory
// and returns its base address.
func (t *Thread) Mmap(length uint64) (Addr, error) {
	length = (length + PageSize - 1) &^ (PageSize - 1)
	base := t.proc.next
	// Keep regions far apart so 2 MiB-granular operations of different
	// domains never share a PMD.
	gap := uint64(16 * pagetable.PMDSize)
	t.proc.next += Addr(length + gap)
	if _, err := t.task.Mmap(base, length, true); err != nil {
		return 0, fmt.Errorf("vdom: mmap: %w", err)
	}
	return base, nil
}

// MmapAt maps memory at a caller-chosen page-aligned address.
func (t *Thread) MmapAt(addr Addr, length uint64, writable bool) error {
	_, err := t.task.Mmap(addr, length, writable)
	return err
}

// AllocVDR gives the thread a virtual domain register (vdr_alloc). nas
// bounds the number of address spaces the thread may own; nas <= 0 uses
// the policy default. nas == 1 disables VDS switching entirely (pure
// eviction mode).
func (t *Thread) AllocVDR(nas int) (Cycles, error) {
	t.proc.requireVDom("AllocVDR")
	return t.proc.mgr.VdrAlloc(t.task, nas)
}

// FreeVDR releases the thread's register (vdr_free).
func (t *Thread) FreeVDR() (Cycles, error) {
	t.proc.requireVDom("FreeVDR")
	return t.proc.mgr.VdrFree(t.task)
}

// WriteVDR sets the thread's permission on d (wrvdr), activating the
// domain in the thread's current VDS if needed — this is where the domain
// virtualization algorithm runs.
func (t *Thread) WriteVDR(d Domain, perm Perm) (Cycles, error) {
	t.proc.requireVDom("WriteVDR")
	return t.proc.mgr.WrVdr(t.task, d, perm)
}

// ReadVDR reads the thread's permission on d (rdvdr).
func (t *Thread) ReadVDR(d Domain) (Perm, Cycles, error) {
	t.proc.requireVDom("ReadVDR")
	return t.proc.mgr.RdVdr(t.task, d)
}

// LoadCost performs a read at addr and reports its simulated cycle cost.
// It is the primary memory-access API: every Thread operation reports
// (Cycles, error), and LoadCost/StoreCost complete that contract for the
// access path. The simulated MMU enforces domain permissions — TLB
// lookup, page walk on a miss, then the domain check — and the error is
// ErrSigsegv (under errors.Is) when the hardware would deny the access;
// the returned cycles cover the attempt and any fault handling the kernel
// performed.
func (t *Thread) LoadCost(addr Addr) (Cycles, error) {
	return t.task.Access(addr, false)
}

// StoreCost performs a write at addr and reports its simulated cycle
// cost; see LoadCost for the access and error semantics. Writes
// additionally require the page to be mapped writable and the domain
// open for writing.
func (t *Thread) StoreCost(addr Addr) (Cycles, error) {
	return t.task.Access(addr, true)
}

// Load is a convenience wrapper around LoadCost for callers that only
// care whether the access was permitted, not what it cost.
func (t *Thread) Load(addr Addr) error {
	_, err := t.LoadCost(addr)
	return err
}

// Store is a convenience wrapper around StoreCost; see Load.
func (t *Thread) Store(addr Addr) error {
	_, err := t.StoreCost(addr)
	return err
}
