package bench

import (
	"bytes"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true} }

func TestTable3Output(t *testing.T) {
	var buf bytes.Buffer
	Table3(&buf)
	out := buf.String()
	for _, want := range []string{
		"Table 3", "empty syscall return", "secure wrvdr with VDS switch", "undefined",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 11 {
		t.Errorf("Table3 printed only %d lines", lines)
	}
}

func TestTable4Output(t *testing.T) {
	var buf bytes.Buffer
	Table4(&buf, quick())
	out := buf.String()
	for _, want := range []string{"VDom X86f seq", "VDom X86e seq", "libmpk seq", "EPK trig", "VDom ARMe seq"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing row %q", want)
		}
	}
}

func TestTable5Output(t *testing.T) {
	var buf bytes.Buffer
	Table5(&buf)
	out := buf.String()
	if !strings.Contains(out, "X86 overhead") || !strings.Contains(out, "undefined") {
		t.Errorf("Table5 output malformed:\n%s", out)
	}
}

func TestFig1Output(t *testing.T) {
	var buf bytes.Buffer
	Fig1(&buf, quick())
	out := buf.String()
	if !strings.Contains(out, "busy waiting") || !strings.Contains(out, "TLB shootdown") {
		t.Errorf("Fig1 output missing breakdown columns:\n%s", out)
	}
	if strings.Count(out, "\n") < 9 {
		t.Error("Fig1 missing client rows")
	}
}

func TestFig7Output(t *testing.T) {
	var buf bytes.Buffer
	Fig7(&buf, quick())
	out := buf.String()
	for _, want := range []string{"lowerbound", "VDS switch", "VDom eviction", "libmpk 4KB pages", "ARM"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 missing %q", want)
		}
	}
}

func TestUnixBenchAndCtxSwitchOutput(t *testing.T) {
	var buf bytes.Buffer
	UnixBench(&buf)
	if !strings.Contains(buf.String(), "index") {
		t.Error("UnixBench output malformed")
	}
	buf.Reset()
	CtxSwitch(&buf)
	out := buf.String()
	if !strings.Contains(out, "switch_mm") || !strings.Contains(out, "X86") {
		t.Errorf("CtxSwitch output malformed:\n%s", out)
	}
}

func TestAblationsOutput(t *testing.T) {
	var buf bytes.Buffer
	Ablations(&buf, quick())
	out := buf.String()
	for _, want := range []string{"HLRU", "PMD-disable", "ASID tagging", "call gate", "range-flush"} {
		if !strings.Contains(out, want) {
			t.Errorf("Ablations missing %q", want)
		}
	}
}

func TestOptionsScale(t *testing.T) {
	q, f := Options{Quick: true}, Options{}
	if q.httpdRequests() >= f.httpdRequests() {
		t.Error("quick mode not smaller for httpd")
	}
	if q.pmoOps() >= f.pmoOps() {
		t.Error("quick mode not smaller for pmo")
	}
	if q.mysqlQueries() >= f.mysqlQueries() {
		t.Error("quick mode not smaller for mysql")
	}
	if q.patternRounds() >= f.patternRounds() {
		t.Error("quick mode not smaller for patterns")
	}
}

func TestFig5OutputQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	var buf bytes.Buffer
	Fig5(&buf, quick())
	out := buf.String()
	for _, want := range []string{"X86 1KB", "X86 128KB", "ARM 64KB", "original", "libmpk"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 missing %q", want)
		}
	}
}

func TestFig6OutputQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	var buf bytes.Buffer
	Fig6(&buf, quick())
	out := buf.String()
	if !strings.Contains(out, "DNF") {
		t.Error("Fig6 missing libmpk DNF marker beyond 14 clients")
	}
	if !strings.Contains(out, "X86") || !strings.Contains(out, "ARM") {
		t.Error("Fig6 missing architecture sections")
	}
}

func TestCSVRendering(t *testing.T) {
	var buf bytes.Buffer
	o := Options{Quick: true, Format: CSV}
	Table3Opts(&buf, o)
	out := buf.String()
	if !strings.HasPrefix(out, "# Table 3") {
		t.Errorf("CSV missing title comment:\n%s", out)
	}
	if !strings.Contains(out, "Operation,X86 Cycles,ARM Cycles") {
		t.Errorf("CSV missing header row:\n%s", out)
	}
	if !strings.Contains(out, "empty syscall return,173.0,268.0") {
		t.Errorf("CSV missing data row:\n%s", out)
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{"": Text, "text": Text, "CSV": CSV, "csv": CSV} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = (%v, %v)", s, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted xml")
	}
}

func TestTableWriters(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "b"}}
	tb.Row("1", "2")
	tb.Row("3", "4")
	var buf bytes.Buffer
	tb.WriteText(&buf)
	if !strings.Contains(buf.String(), "a") || !strings.Contains(buf.String(), "3") {
		t.Errorf("text output: %q", buf.String())
	}
	buf.Reset()
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# T\na,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Errorf("csv output %q, want %q", buf.String(), want)
	}
}

func TestTable1And2Output(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, quick())
	out := buf.String()
	for _, api := range []string{"vdom_init", "vdom_mprotect", "wrvdr", "vdr_alloc"} {
		if !strings.Contains(out, api) {
			t.Errorf("Table1 missing %q", api)
		}
	}
	buf.Reset()
	Table2(&buf, quick())
	out = buf.String()
	if !strings.Contains(out, "binary scan") || !strings.Contains(out, "syscall filter") {
		t.Errorf("Table2 missing defense types:\n%s", out)
	}
	if strings.Contains(out, "NOT BLOCKED") {
		t.Errorf("Table2 reports an unblocked defense:\n%s", out)
	}
}

func TestCompareOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison sweep")
	}
	var buf bytes.Buffer
	Compare(&buf, quick())
	out := buf.String()
	for _, want := range []string{
		"Compare: Table 3", "worst Table 3 deviation",
		"Compare: Table 4 headline cells", "Compare: application overheads",
		"Compare: context switch", "paper",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Compare output missing %q", want)
		}
	}
}

func TestPaperReferenceTables(t *testing.T) {
	if len(PaperTable3) != 10 {
		t.Errorf("PaperTable3 rows = %d, want 10", len(PaperTable3))
	}
	if len(PaperTable4) != 11 {
		t.Errorf("PaperTable4 rows = %d, want 11", len(PaperTable4))
	}
	if PaperTable5["X86"][4] != 56.1 {
		t.Error("PaperTable5 X86/32 wrong")
	}
	if len(PaperHeadlines) < 15 {
		t.Errorf("PaperHeadlines = %d entries", len(PaperHeadlines))
	}
}
