// Package perf is the committed performance harness: a fixed benchmark
// suite whose results are normalized by a machine calibration loop,
// serialized as versioned vdom-perf/v1 JSON, and compared against a
// baseline committed in the repository (BENCH_7.json) so CI can fail on
// regressions without pinning to one physical machine.
//
// The suite is intentionally small and fixed — four rates that together
// cover the hot paths PERFORMANCE.md tracks:
//
//   - replay: recorded domain-op events re-executed and verified per
//     second (internal/replay over the golden table4 corpus trace);
//   - table4: Table-4 domain activations (MMU accesses that trigger a
//     permission-register rewrite) per second across the paper's three
//     systems (VDom, libmpk, EPK) at 64 vdoms;
//   - parallel-grid: isolated experiment-grid cells (one simulated
//     System each) completed per second under the internal/par worker
//     pool;
//   - checkpoint: vdom-snap/v1 capture+encode throughput in bytes per
//     second on a mid-soak chaos system.
//
// Every benchmark's per-iteration workload is fixed — Options.Quick
// reduces only the number of timed repetitions and iterations, never the
// work one iteration does — so a quick CI run and a full baseline run
// measure the same quantity and are directly comparable.
//
// # Machine normalization
//
// Raw rates depend on the host. The unit of "machine speed" is a fixed,
// deterministic loop mixing dependent ALU work, cache-missing loads and
// stores over an 8 MiB buffer, and periodic heap allocation (see
// calibrationLoop), measured in calibration steps per second. A calibration burst runs interleaved
// before every timed repetition of every benchmark, the repetitions are
// round-robined across the suite (rep 1 of each benchmark, then rep 2 of
// each, ...), and two machine properties are estimated independently by
// min-of-N: each benchmark's best raw rate, and the run's best
// calibration rate. The report then scales every raw rate onto the
// pinned reference machine (RefCalibration steps/sec):
//
//	normalized = best-raw * RefCalibration / best-calibration
//
// The structure is deliberate. On shared hosts, contention arrives in
// episodes lasting seconds — long enough to swallow all of one
// benchmark's back-to-back repetitions, short enough that round-robined
// repetitions spread across the whole run give min-of-N a clean window
// for every benchmark and for the calibration. Best-casing the raw rate
// and the calibration independently is what makes the ratio stable:
// both converge to fixed machine properties, whereas best-casing a
// per-repetition raw/calibration ratio would systematically select
// repetitions whose burst happened to run slow. Compare judges
// regressions on normalized rates only. See PERFORMANCE.md for the
// methodology's limits (memory-bound and parallel benchmarks normalize
// imperfectly) and for how to refresh the baseline.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"vdom/internal/chaos"
	"vdom/internal/cycles"
	"vdom/internal/par"
	"vdom/internal/replay"
	"vdom/internal/tlb"
	"vdom/internal/workload"
)

// Version is the JSON schema identifier written into every report.
const Version = "vdom-perf/v1"

// RefCalibration is the pinned reference-machine speed: calibration-loop
// steps per second (each step is a xorshift advance plus one
// cache-missing load). The exact value is arbitrary — it only fixes the
// unit normalized rates are quoted in — and must never change while
// committed baselines exist, or every baseline silently rescales.
const RefCalibration = 250e6

// Sink defeats dead-code elimination of the calibration loop. Never read
// it for meaning.
var Sink uint64

// Report is one suite run: the vdom-perf/v1 JSON document.
type Report struct {
	Version string `json:"version"`
	GoOS    string `json:"goos"`
	GoArch  string `json:"goarch"`
	GoVer   string `json:"go"`
	CPUs    int    `json:"cpus"`
	Quick   bool   `json:"quick"`

	// Calibration is the host's speed in calibration steps per second —
	// the fastest burst observed across the run's interleaved
	// repetitions — and Scale is RefCalibration/Calibration, the factor
	// that turns every raw rate into its normalized one.
	Calibration float64 `json:"calibration_steps_per_sec"`
	Scale       float64 `json:"scale"`

	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one measured rate of the fixed suite.
type Benchmark struct {
	Name string `json:"name"`
	Unit string `json:"unit"`
	// Iters is the per-repetition iteration count and Repeats the number
	// of timed repetitions; the reported rates come from the fastest
	// repetition (min-of-N), the standard defense against scheduler and
	// frequency noise on shared hosts.
	Iters   int `json:"iters"`
	Repeats int `json:"repeats"`
	// Raw is units per second on this machine (best repetition).
	// Normalized is Raw projected onto the reference machine
	// (Raw * Report.Scale) — the figure Compare judges.
	Raw        float64 `json:"raw"`
	Normalized float64 `json:"normalized"`
}

// Options tune a suite run without changing what it measures.
type Options struct {
	// Quick cuts repetitions and iteration counts for a CI smoke run.
	// The per-iteration workload is identical, so quick and full rates
	// are comparable (quick is just noisier).
	Quick bool
	// Repeats overrides the repetition count (0: 16 full, 12 quick).
	Repeats int
}

func (o Options) repeats() int {
	if o.Repeats > 0 {
		return o.Repeats
	}
	if o.Quick {
		return 12
	}
	return 16
}

func (o Options) scaled(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// calSteps is the calibration loop length per timed repetition: long
// enough to amortize timer overhead, short enough to repeat several
// times.
const calSteps = 1 << 22

// calBufWords sizes the calibration loop's scan buffer: 8 MiB, past any
// last-level cache, so every step touches DRAM.
const calBufWords = 1 << 20

// calBuf is the calibration scan buffer, built once by initCal before
// any timed burst.
var calBuf []uint64

func initCal() {
	if calBuf != nil {
		return
	}
	calBuf = make([]uint64, calBufWords)
	for i := range calBuf {
		calBuf[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
}

// calSink keeps calibrationLoop's allocations reachable within a burst
// so the compiler cannot stack-allocate or elide them.
var calSink []byte

// calibrationLoop advances a xorshift64 state n times; each step also
// reads and writes a pseudo-random word of the 8 MiB scan buffer, and
// every 64th step allocates a small heap object. It is the fixed unit of
// "machine speed", chosen to resemble the suite's own instruction mix:
// dependent ALU work, cache-missing loads and stores, and real allocator
// and GC traffic. The closer the mix, the more of the host's contention
// — CPU steal, memory bandwidth, allocator slow paths — hits the
// calibration and the benchmarks proportionally and cancels in the
// normalized rate; a pure register loop would be blind to everything but
// CPU speed.
func calibrationLoop(n int) uint64 {
	x := uint64(0x9E3779B97F4A7C15)
	var s uint64
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := x & (calBufWords - 1)
		s += calBuf[j]
		calBuf[j^1] = s
		if i&63 == 0 {
			calSink = make([]byte, 64)
			calSink[0] = byte(x)
		}
	}
	return x + s + uint64(calSink[0])
}

// Calibrate measures the host's speed in calibration steps per second,
// taking the fastest of reps timed runs.
func Calibrate(reps int) float64 {
	if reps < 1 {
		reps = 1
	}
	initCal()
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		Sink += calibrationLoop(calSteps)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return calSteps / best.Seconds()
}

// benchmark is one suite entry: setup returns (units per iteration, the
// iteration body). Units are whatever the Unit string says — events,
// accesses, cells, bytes.
type benchmark struct {
	name  string
	unit  string
	setup func(o Options) (units float64, iter func() error, err error)
}

// burstSteps is the per-repetition calibration burst: ~10ms on the
// reference machine, long enough to sample the repetition's contention.
const burstSteps = calSteps / 4

// oneRep times a single (calibration burst, iters×iter) pair, folds the
// repetition's raw rate into the benchmark record if it beats the best
// so far, and returns the burst's calibration rate. Raw rates and
// calibration rates are best-cased *independently* across the run: each
// is a noisy under-estimate of a stable machine property, so min-of-N
// converges both, whereas best-casing their ratio per repetition would
// systematically inflate it (a repetition whose burst ran slow looks
// anomalously fast after normalization).
func oneRep(b *Benchmark, units float64, iter func() error, iters int) (cal float64, err error) {
	// Collect before timing (as testing.B does): a collection falling
	// inside the window would otherwise charge accumulated GC debt to
	// this repetition.
	runtime.GC()
	start := time.Now()
	Sink += calibrationLoop(burstSteps)
	cal = burstSteps / time.Since(start).Seconds()
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := iter(); err != nil {
			return 0, err
		}
	}
	if rate := units * float64(iters) / time.Since(start).Seconds(); rate > b.Raw {
		b.Raw = rate
	}
	return cal, nil
}

// suite is the fixed benchmark list. Order is the report order.
func suite() []benchmark {
	return []benchmark{
		{name: "replay", unit: "events/sec", setup: setupReplay},
		{name: "table4", unit: "accesses/sec", setup: setupTable4},
		{name: "parallel-grid", unit: "cells/sec", setup: setupGrid},
		{name: "checkpoint", unit: "bytes/sec", setup: setupCheckpoint},
	}
}

// setupReplay records the golden table4 corpus trace once and replays it
// (boot, re-execute, verify every event) per iteration.
func setupReplay(Options) (float64, func() error, error) {
	var tr *replay.Trace
	for _, spec := range workload.TraceCorpus() {
		if spec.Name == "table4-vdom-x86" {
			tr = spec.Record()
			break
		}
	}
	if tr == nil {
		return 0, nil, fmt.Errorf("perf: corpus trace table4-vdom-x86 not found")
	}
	iter := func() error {
		res, err := replay.Run(tr, replay.Options{})
		if err != nil {
			return err
		}
		if res.Divergence != nil {
			return fmt.Errorf("perf: replay diverged: %s", res.Divergence)
		}
		return nil
	}
	return float64(len(tr.Events)), iter, nil
}

// setupTable4 runs Table 4's headline cells — the switch-triggering
// activation pattern at 64 vdoms on VDom, libmpk, and EPK — counting
// domain activations (each one an MMU access that rewrites the
// permission register or its baseline equivalent).
func setupTable4(Options) (float64, func() error, error) {
	cfgs := []workload.PatternConfig{
		{Arch: cycles.X86, System: workload.PatternVDomSecure,
			Pattern: workload.SwitchTriggering, NumVdoms: 64, Rounds: 6},
		{Arch: cycles.X86, System: workload.PatternLibmpk,
			Pattern: workload.Sequential, NumVdoms: 64, Rounds: 6},
		{Arch: cycles.X86, System: workload.PatternEPK,
			Pattern: workload.SwitchTriggering, NumVdoms: 64, Rounds: 6},
	}
	units := 0
	for _, cfg := range cfgs {
		units += workload.RunPattern(cfg).Activations
	}
	iter := func() error {
		for _, cfg := range cfgs {
			workload.RunPattern(cfg)
		}
		return nil
	}
	return float64(units), iter, nil
}

// setupGrid fans a fixed Table-4-style grid — (system, pattern, vdom
// count) cells, one isolated System each — across the internal/par
// worker pool, measuring completed cells per second at full pool width.
func setupGrid(Options) (float64, func() error, error) {
	type cellSpec struct {
		sys workload.PatternSystem
		pat workload.Pattern
		n   int
	}
	var specs []cellSpec
	for _, sys := range []workload.PatternSystem{
		workload.PatternVDomSecure, workload.PatternVDomEvict,
		workload.PatternLibmpk, workload.PatternEPK,
	} {
		for _, pat := range []workload.Pattern{workload.Sequential, workload.SwitchTriggering} {
			for _, n := range []int{4, 16, 32, 64} {
				specs = append(specs, cellSpec{sys, pat, n})
			}
		}
	}
	jobs := make([]func() struct{}, len(specs))
	for i := range jobs {
		s := specs[i]
		jobs[i] = func() struct{} {
			workload.RunPattern(workload.PatternConfig{
				Arch: cycles.X86, System: s.sys, Pattern: s.pat,
				NumVdoms: s.n, Rounds: 3,
			})
			return struct{}{}
		}
	}
	iter := func() error {
		par.Map(0, jobs)
		return nil
	}
	return float64(len(jobs)), iter, nil
}

// setupCheckpoint steps a seeded chaos soak to mid-run and measures full
// System capture+encode (vdom-snap/v1) throughput in snapshot bytes per
// second.
func setupCheckpoint(Options) (float64, func() error, error) {
	s := chaos.StartSoak(chaos.SoakConfig{
		Chaos: chaos.Config{
			Seed:           7,
			DropIPI:        0.05,
			DelayIPI:       0.05,
			StaleTLB:       0.03,
			ASIDExhaustion: 0.02,
			ASIDLimit:      tlb.ASID(24),
			VDSAllocFail:   0.10,
			PdomExhaustion: 0.05,
			SpuriousFault:  0.02,
		},
		Ops:    600,
		Record: true,
	})
	for i := 0; i < 500; i++ {
		s.Step()
	}
	snap, err := s.Checkpoint()
	if err != nil {
		return 0, nil, err
	}
	iter := func() error {
		_, err := s.Checkpoint()
		return err
	}
	return float64(len(snap)), iter, nil
}

// iterCounts fixes each benchmark's per-repetition iteration count
// (full, quick). The counts only trade noise against wall clock; rates
// are per-iteration and comparable across them.
var iterCounts = map[string][2]int{
	"replay":        {40, 20},
	"table4":        {8, 5},
	"parallel-grid": {4, 2},
	"checkpoint":    {60, 30},
}

// Run executes the fixed suite and returns the vdom-perf/v1 report.
func Run(o Options) (*Report, error) {
	rep := &Report{
		Version: Version,
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
		GoVer:   runtime.Version(),
		CPUs:    runtime.NumCPU(),
		Quick:   o.Quick,
	}
	initCal()
	// Set every benchmark up first, then round-robin the repetitions:
	// rep 1 of each benchmark, rep 2 of each, ... Contention episodes on
	// shared hosts last seconds — long enough to swallow all of one
	// benchmark's back-to-back repetitions but not the whole suite — so
	// spreading each benchmark's repetitions across the full run lets
	// min-of-N find a clean window for every benchmark.
	type prepared struct {
		units float64
		iter  func() error
	}
	var runs []prepared
	reps := o.repeats()
	for _, b := range suite() {
		units, iter, err := b.setup(o)
		if err != nil {
			return nil, fmt.Errorf("perf: %s: %w", b.name, err)
		}
		n := iterCounts[b.name]
		runs = append(runs, prepared{units, iter})
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Name: b.name, Unit: b.unit,
			Iters: o.scaled(n[0], n[1]), Repeats: reps,
		})
	}
	for r := 0; r < reps; r++ {
		for i := range runs {
			b := &rep.Benchmarks[i]
			cal, err := oneRep(b, runs[i].units, runs[i].iter, b.Iters)
			if err != nil {
				return nil, fmt.Errorf("perf: %s: %w", b.Name, err)
			}
			if cal > rep.Calibration {
				rep.Calibration = cal
			}
		}
	}
	rep.Scale = RefCalibration / rep.Calibration
	for i := range rep.Benchmarks {
		rep.Benchmarks[i].Normalized = rep.Benchmarks[i].Raw * rep.Scale
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON with a trailing newline
// (the committed-baseline format).
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadFile loads a vdom-perf/v1 report, rejecting other versions.
func ReadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Version != Version {
		return nil, fmt.Errorf("perf: %s: version %q, want %q", path, r.Version, Version)
	}
	return &r, nil
}

// Regression is one benchmark whose normalized rate fell below the
// baseline by more than the threshold, or that vanished from the suite.
type Regression struct {
	Name string
	// Baseline and Current are normalized rates (units/sec on the
	// reference machine); Drop is 1 - Current/Baseline.
	Baseline float64
	Current  float64
	Drop     float64
}

// Compare checks cur against base benchmark-by-benchmark on normalized
// rates and returns the regressions: benchmarks slower than
// base*(1-threshold), and baseline benchmarks missing from cur.
// Improvements never fail — refresh the baseline to bank them (see
// PERFORMANCE.md).
func Compare(base, cur *Report, threshold float64) []Regression {
	current := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		current[b.Name] = b
	}
	var regs []Regression
	for _, want := range base.Benchmarks {
		got, ok := current[want.Name]
		if !ok {
			regs = append(regs, Regression{Name: want.Name, Baseline: want.Normalized, Drop: 1})
			continue
		}
		if want.Normalized <= 0 {
			continue
		}
		if drop := 1 - got.Normalized/want.Normalized; drop > threshold {
			regs = append(regs, Regression{
				Name: want.Name, Baseline: want.Normalized,
				Current: got.Normalized, Drop: drop,
			})
		}
	}
	return regs
}
