// Package mm implements the simulated kernel's per-process memory
// management: the red-black tree of virtual memory areas (the mm_struct
// analog), demand paging, and the lazy/eager synchronization that keeps
// multiple per-VDS page tables consistent with one process-wide view of
// virtual memory (paper §6.2).
package mm

import (
	"fmt"

	"vdom/internal/pagetable"
)

// Tag is an opaque domain label attached to a VMA (the paper extends
// vm_flags with the vdom). Zero means untagged.
type Tag uint64

// VMA is one virtual memory area.
type VMA struct {
	Start    pagetable.VAddr
	Length   uint64
	Writable bool
	Tag      Tag
}

// End returns the exclusive end address.
func (v *VMA) End() pagetable.VAddr { return v.Start + pagetable.VAddr(v.Length) }

// Contains reports whether a falls inside the area.
func (v *VMA) Contains(a pagetable.VAddr) bool { return a >= v.Start && a < v.End() }

// Pages returns the number of pages the area covers.
func (v *VMA) Pages() int { return int(v.Length / pagetable.PageSize) }

// String formats the area for diagnostics.
func (v *VMA) String() string {
	w := "r-"
	if v.Writable {
		w = "rw"
	}
	return fmt.Sprintf("[%#x,%#x) %s tag=%d", uint64(v.Start), uint64(v.End()), w, v.Tag)
}

// Tree is a left-leaning red-black tree of VMAs keyed by start address,
// the moral equivalent of Linux's mm->mm_rb.
type Tree struct {
	root  *rbNode
	count int
}

type rbNode struct {
	vma         *VMA
	left, right *rbNode
	red         bool
}

func isRed(n *rbNode) bool { return n != nil && n.red }

func rotateLeft(h *rbNode) *rbNode {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight(h *rbNode) *rbNode {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors(h *rbNode) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

func fixUp(h *rbNode) *rbNode {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

// Len returns the number of areas in the tree.
func (t *Tree) Len() int { return t.count }

// Insert adds a VMA. It panics on a duplicate start address; callers are
// expected to have checked for overlap already.
func (t *Tree) Insert(v *VMA) {
	t.root = t.insert(t.root, v)
	t.root.red = false
	t.count++
}

func (t *Tree) insert(h *rbNode, v *VMA) *rbNode {
	if h == nil {
		return &rbNode{vma: v, red: true}
	}
	switch {
	case v.Start < h.vma.Start:
		h.left = t.insert(h.left, v)
	case v.Start > h.vma.Start:
		h.right = t.insert(h.right, v)
	default:
		panic(fmt.Sprintf("mm: duplicate VMA start %#x", uint64(v.Start)))
	}
	return fixUp(h)
}

// Delete removes the VMA starting at start and reports whether it existed.
func (t *Tree) Delete(start pagetable.VAddr) bool {
	if t.lookupExact(start) == nil {
		return false
	}
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.red = true
	}
	t.root = t.delete(t.root, start)
	if t.root != nil {
		t.root.red = false
	}
	t.count--
	return true
}

func moveRedLeft(h *rbNode) *rbNode {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight(h *rbNode) *rbNode {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func minNode(h *rbNode) *rbNode {
	for h.left != nil {
		h = h.left
	}
	return h
}

func deleteMin(h *rbNode) *rbNode {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

func (t *Tree) delete(h *rbNode, start pagetable.VAddr) *rbNode {
	if start < h.vma.Start {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, start)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if start == h.vma.Start && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if start == h.vma.Start {
			m := minNode(h.right)
			h.vma = m.vma
			h.right = deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, start)
		}
	}
	return fixUp(h)
}

func (t *Tree) lookupExact(start pagetable.VAddr) *VMA {
	n := t.root
	for n != nil {
		switch {
		case start < n.vma.Start:
			n = n.left
		case start > n.vma.Start:
			n = n.right
		default:
			return n.vma
		}
	}
	return nil
}

// Find returns the VMA containing a, or nil.
func (t *Tree) Find(a pagetable.VAddr) *VMA {
	n := t.root
	var cand *VMA
	for n != nil {
		if a < n.vma.Start {
			n = n.left
		} else {
			cand = n.vma
			n = n.right
		}
	}
	if cand != nil && cand.Contains(a) {
		return cand
	}
	return nil
}

// Range calls fn, in ascending order, for every VMA intersecting
// [start, end). Returning false from fn stops the walk. fn must not mutate
// the tree.
func (t *Tree) Range(start, end pagetable.VAddr, fn func(*VMA) bool) {
	if start >= end {
		return
	}
	// Areas are disjoint, so at most one intersecting area starts before
	// the window: the one containing start.
	if v := t.Find(start); v != nil && v.Start < start {
		if !fn(v) {
			return
		}
	}
	t.rangeFrom(t.root, start, end, fn)
}

// rangeFrom visits, in order, every node with Start in [start, end).
func (t *Tree) rangeFrom(n *rbNode, start, end pagetable.VAddr, fn func(*VMA) bool) bool {
	if n == nil {
		return true
	}
	if n.vma.Start >= start {
		if !t.rangeFrom(n.left, start, end, fn) {
			return false
		}
		if n.vma.Start < end && !fn(n.vma) {
			return false
		}
	}
	if n.vma.Start < end {
		if !t.rangeFrom(n.right, start, end, fn) {
			return false
		}
	}
	return true
}

// All calls fn for every VMA in ascending order. fn must not mutate the
// tree.
func (t *Tree) All(fn func(*VMA) bool) {
	t.allNode(t.root, fn)
}

func (t *Tree) allNode(n *rbNode, fn func(*VMA) bool) bool {
	if n == nil {
		return true
	}
	if !t.allNode(n.left, fn) {
		return false
	}
	if !fn(n.vma) {
		return false
	}
	return t.allNode(n.right, fn)
}
