package fleet

import (
	"encoding/json"
	"io"
	"sort"
)

// ReportSchema tags the machine-readable fleet report.
const ReportSchema = "vdom-fleet-report/v1"

// QuarantinedCell is one cell that exhausted its retry budget.
type QuarantinedCell struct {
	// Grid and Index identify the cell.
	Grid  string `json:"grid"`
	Index int    `json:"index"`
	// Attempts is how many executions were tried before quarantine.
	Attempts int `json:"attempts"`
	// LastError is the final failure, rendered.
	LastError string `json:"lastError"`
}

// Report is the machine-readable outcome of one fleet run: how the
// coordinator's recovery ladder fared. Quarantined non-empty is the
// run's only failure condition — everything else (deaths, respawns,
// timeouts, transport errors) is recovered-from noise the fleet is
// built to absorb.
type Report struct {
	Schema string `json:"schema"`
	// Workers is the fleet width that was requested.
	Workers int `json:"workers"`
	// Cells is the number of cells distributed.
	Cells int `json:"cells"`
	// Degraded reports the no-subprocess fallback: no worker could be
	// spawned, so every cell ran in-process.
	Degraded bool `json:"degraded"`
	// Recoveries counts cells that failed at least once and then
	// completed on a retry.
	Recoveries int `json:"recoveries"`
	// WorkerDeaths counts pipe losses: kill -9, worker exit, torn or
	// sheared transport.
	WorkerDeaths int `json:"workerDeaths"`
	// Respawns counts replacement workers brought up after a death.
	Respawns int `json:"respawns"`
	// Timeouts counts cells reassigned because their heartbeat stalled
	// past the per-cell timeout.
	Timeouts int `json:"timeouts"`
	// TransportErrors counts frames rejected by the codec or the result
	// digest, per decode sentinel class.
	TransportErrors map[string]uint64 `json:"transportErrors,omitempty"`
	// FaultsInjected counts transport faults fired by the injector, per
	// class (only present when fault injection was enabled).
	FaultsInjected map[string]uint64 `json:"faultsInjected,omitempty"`
	// Quarantined lists cells that exhausted their retries, in cell
	// order. Non-empty means the run failed.
	Quarantined []QuarantinedCell `json:"quarantined"`
}

// Healthy reports whether every cell completed without quarantine.
func (r *Report) Healthy() bool { return len(r.Quarantined) == 0 }

// WriteJSON renders the report deterministically (map keys sorted by
// encoding/json, quarantined cells already in cell order).
func (r *Report) WriteJSON(w io.Writer) error {
	r.Schema = ReportSchema
	if r.Quarantined == nil {
		r.Quarantined = []QuarantinedCell{}
	}
	sort.Slice(r.Quarantined, func(i, j int) bool {
		if r.Quarantined[i].Grid != r.Quarantined[j].Grid {
			return r.Quarantined[i].Grid < r.Quarantined[j].Grid
		}
		return r.Quarantined[i].Index < r.Quarantined[j].Index
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}
