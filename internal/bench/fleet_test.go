package bench

import (
	"bytes"
	"errors"
	"io"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"vdom/internal/fleet"
	"vdom/internal/metrics"
)

// memorySpawn builds in-memory pipe workers running the real fleet
// Worker loop over this package's grid executor: the full protocol —
// framing, heartbeats, digests — without subprocess overhead. Kill
// severs both pipes abruptly, the in-memory analogue of SIGKILL.
func memorySpawn() fleet.Spawn {
	exec := Executor(Options{})
	return func(id int) (*fleet.WorkerProc, error) {
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			fleet.Worker(inR, outW, fleet.WorkerConfig{ID: id, HeartbeatEvery: 5 * time.Millisecond}, exec)
			outW.Close()
		}()
		var once sync.Once
		kill := func() {
			once.Do(func() {
				outR.CloseWithError(errors.New("killed"))
				inR.CloseWithError(errors.New("killed"))
			})
		}
		return &fleet.WorkerProc{
			In:   inW,
			Out:  outR,
			Kill: kill,
			Wait: func() error { <-done; return nil },
		}, nil
	}
}

// runExperiment executes one experiment under the given options and
// returns its rendered output, metrics snapshot, and trace bytes.
func runExperiment(t *testing.T, run func(io.Writer, Options), o Options) (table, snap, trace []byte) {
	t.Helper()
	o.Metrics = metrics.New()
	o.Trace = metrics.NewTrace()
	var tb, mb, jb bytes.Buffer
	run(&tb, o)
	if err := o.Metrics.WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	if err := o.Trace.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes(), jb.Bytes()
}

// TestFleetByteIdentical is the fleet's core guarantee at the bench
// layer: sharding an experiment's grid across worker subprocesses —
// while a chaos hook kills one worker mid-cell and a seeded injector
// corrupts, duplicates, and delays frames in flight — produces rendered
// tables, metrics snapshots, and trace bytes identical to the
// single-process sequential reference.
func TestFleetByteIdentical(t *testing.T) {
	type experiment struct {
		name string
		run  func(w io.Writer, o Options)
		// wantKill requires the kill-one-worker chaos hook to have fired
		// and recovered; only meaningful on grids large enough that the
		// hook reliably finds a mid-cell worker to kill (a tiny grid can
		// drain before it ever catches one busy).
		wantKill bool
	}
	experiments := []experiment{
		{"tables", Tables, true},
		{"chaos", func(w io.Writer, o Options) {
			if err := ChaosSeed(w, o, 42); err != nil {
				t.Errorf("chaos: %v", err)
			}
		}, true},
		{"fig1", Fig1, false},
		{"unixbench", UnixBenchOpts, false},
	}
	for _, exp := range experiments {
		exp := exp
		t.Run(exp.name, func(t *testing.T) {
			t.Parallel()
			tRef, mRef, jRef := runExperiment(t, exp.run, Options{Quick: true, Parallel: 1})
			for _, workers := range []int{2, 4} {
				fr := &FleetRun{
					Workers: workers,
					Spawn:   memorySpawn(),
					Faults: fleet.FaultConfig{
						Seed:    77,
						Corrupt: 0.01, Duplicate: 0.01, Delay: 0.02,
					},
					MaxAttempts: 10,
					KillAfter:   2,
					CellTimeout: time.Minute,
				}
				tF, mF, jF := runExperiment(t, exp.run, Options{Quick: true, FleetRun: fr})
				rep := fr.Report()
				if !rep.Healthy() {
					t.Fatalf("%d workers: fleet unhealthy: %+v", workers, rep)
				}
				if rep.Degraded {
					t.Fatalf("%d workers: fleet degraded with a working spawn: %+v", workers, rep)
				}
				if !bytes.Equal(tRef, tF) {
					t.Errorf("%d workers: rendered output differs from sequential reference:\n--- ref\n%s\n--- fleet\n%s", workers, tRef, tF)
				}
				if !bytes.Equal(mRef, mF) {
					t.Errorf("%d workers: metrics snapshot differs from sequential reference:\n--- ref\n%s\n--- fleet\n%s", workers, mRef, mF)
				}
				if !bytes.Equal(jRef, jF) {
					t.Errorf("%d workers: trace differs from sequential reference", workers)
				}
				if exp.wantKill && (rep.WorkerDeaths < 1 || rep.Respawns < 1 || rep.Recoveries < 1) {
					t.Errorf("%d workers: kill-one-worker chaos left no recovery evidence: %+v", workers, rep)
				}
			}
			if len(tRef) == 0 {
				t.Error("experiment produced no output")
			}
		})
	}
}

// TestFleetWorkerHelper is not a test: it is the worker subprocess body
// for TestFleetRealProcessKillMidCell. When the fleet coordinator
// re-execs this test binary with VDOM_FLEET_WORKER set, this "test"
// serves the worker protocol on stdin/stdout and exits before the
// testing framework can print anything onto the frame stream.
func TestFleetWorkerHelper(t *testing.T) {
	idStr := os.Getenv("VDOM_FLEET_WORKER")
	if idStr == "" {
		t.Skip("not spawned as a fleet worker")
	}
	id, _ := strconv.Atoi(idStr)
	fleet.Worker(os.Stdin, os.Stdout, fleet.WorkerConfig{ID: id}, Executor(Options{}))
	os.Exit(0)
}

// TestFleetRealProcessKillMidCell runs Table 4 across real worker
// subprocesses (this test binary re-exec'd into the helper above) and
// SIGKILLs one of them mid-cell: the run must still complete healthy,
// byte-identical to the sequential reference, with the death, respawn,
// and recovery on the record.
func TestFleetRealProcessKillMidCell(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	tRef, mRef, jRef := runExperiment(t, Table4, Options{Quick: true, Parallel: 1})
	fr := &FleetRun{
		Workers:     2,
		Spawn:       fleet.SpawnProcess([]string{exe, "-test.run=^TestFleetWorkerHelper$"}),
		KillAfter:   2,
		CellTimeout: time.Minute,
	}
	tF, mF, jF := runExperiment(t, Table4, Options{Quick: true, FleetRun: fr})
	rep := fr.Report()
	if !rep.Healthy() || rep.Degraded {
		t.Fatalf("real-process fleet unhealthy or degraded: %+v", rep)
	}
	if !bytes.Equal(tRef, tF) || !bytes.Equal(mRef, mF) || !bytes.Equal(jRef, jF) {
		t.Fatalf("real-process fleet output differs from sequential reference:\n--- ref\n%s\n--- fleet\n%s", tRef, tF)
	}
	if rep.WorkerDeaths < 1 || rep.Respawns < 1 || rep.Recoveries < 1 {
		t.Fatalf("SIGKILL mid-cell left no recovery evidence: %+v", rep)
	}
}
