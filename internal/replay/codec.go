package replay

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// traceMagic opens every binary trace.
var traceMagic = [4]byte{'V', 'D', 'T', 'R'}

// Sanity caps for the decoder: a well-formed trace never exceeds these, so
// anything beyond them is rejected as malformed rather than allocated.
const (
	maxStringLen  = 1 << 20
	maxSmallField = 1 << 20
)

// Encode serializes the trace to the compact binary form: the VDTR magic,
// then header, events (times delta-encoded), and end-state section, all
// fields uvarint and all maps sorted by key so encoding is deterministic.
func Encode(t *Trace) []byte {
	// One right-sized allocation up front: a fully populated event rarely
	// exceeds ~20 uvarint bytes, so estimating from the event count keeps
	// the encoder from reallocating its buffer through every doubling on
	// large traces.
	b := make([]byte, 0, 256+24*len(t.Events)+32*len(t.End))
	b = append(b, traceMagic[:]...)
	b = putUvarint(b, uint64(t.Header.Version))
	b = putString(b, t.Header.Kernel)
	b = putString(b, t.Header.Arch)
	b = putUvarint(b, uint64(t.Header.Cores))
	b = putUvarint(b, uint64(t.Header.TLBCap))
	b = putUvarint(b, t.Header.Seed)
	b = putString(b, t.Header.Workload)
	b = putUvarint(b, t.Header.ConfigDigest)
	b = putUvarint(b, uint64(t.Header.Flags))
	b = putUvarint(b, t.Header.FlushThreshold)
	b = putUvarint(b, uint64(t.Header.Nas))
	b = putUvarint(b, uint64(t.Header.Domains))
	b = putUvarint(b, uint64(len(t.Header.Extra)))
	for _, k := range sortedU64Keys(t.Header.Extra) {
		b = putString(b, k)
		b = putUvarint(b, t.Header.Extra[k])
	}

	b = putUvarint(b, uint64(len(t.Events)))
	var prev uint64
	for _, e := range t.Events {
		b = putUvarint(b, e.Time-prev)
		prev = e.Time
		b = putUvarint(b, e.TID)
		b = putUvarint(b, uint64(e.Op))
		b = putUvarint(b, e.Addr)
		b = putUvarint(b, e.Len)
		b = putUvarint(b, e.Dom)
		b = putUvarint(b, uint64(e.Perm))
		b = putUvarint(b, uint64(e.Flags))
		b = putUvarint(b, e.Cost)
		b = putUvarint(b, uint64(e.Err))
	}

	if t.End == nil {
		b = putUvarint(b, 0)
	} else {
		b = putUvarint(b, 1)
		b = putUvarint(b, uint64(len(t.End)))
		for _, k := range sortedU64Keys(t.End) {
			b = putString(b, k)
			b = putUvarint(b, t.End[k])
		}
	}
	return b
}

// Decode parses a binary trace. Malformed input yields a typed error
// (ErrBadMagic, ErrBadVersion, ErrTruncated, ErrBadRecord) — never a
// panic, whatever the bytes.
func Decode(data []byte) (*Trace, error) {
	d := &decoder{buf: data}
	if len(data) < len(traceMagic) || string(data[:4]) != string(traceMagic[:]) {
		return nil, ErrBadMagic
	}
	d.off = 4

	t := &Trace{}
	h := &t.Header
	v, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if v != FormatVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, v, FormatVersion)
	}
	h.Version = int(v)
	if h.Kernel, err = d.string(); err != nil {
		return nil, err
	}
	if h.Arch, err = d.string(); err != nil {
		return nil, err
	}
	if h.Cores, err = d.smallInt("cores"); err != nil {
		return nil, err
	}
	if h.TLBCap, err = d.smallInt("tlb-cap"); err != nil {
		return nil, err
	}
	if h.Seed, err = d.uvarint(); err != nil {
		return nil, err
	}
	if h.Workload, err = d.string(); err != nil {
		return nil, err
	}
	if h.ConfigDigest, err = d.uvarint(); err != nil {
		return nil, err
	}
	flags, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if flags > 1<<32-1 {
		return nil, fmt.Errorf("%w: header flags %#x out of range", ErrBadRecord, flags)
	}
	h.Flags = uint32(flags)
	if h.FlushThreshold, err = d.uvarint(); err != nil {
		return nil, err
	}
	if h.Nas, err = d.smallInt("nas"); err != nil {
		return nil, err
	}
	if h.Domains, err = d.smallInt("domains"); err != nil {
		return nil, err
	}
	nExtra, err := d.count("extra")
	if err != nil {
		return nil, err
	}
	if nExtra > 0 {
		h.Extra = make(map[string]uint64, nExtra)
		for i := 0; i < nExtra; i++ {
			k, err := d.string()
			if err != nil {
				return nil, err
			}
			if h.Extra[k], err = d.uvarint(); err != nil {
				return nil, err
			}
		}
	}

	nEvents, err := d.count("events")
	if err != nil {
		return nil, err
	}
	t.Events = make([]Event, 0, nEvents)
	var clock uint64
	for i := 0; i < nEvents; i++ {
		var e Event
		dt, err := d.uvarint()
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		clock += dt
		e.Time = clock
		if e.TID, err = d.uvarint(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		op, err := d.uvarint()
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		if op == uint64(opInvalid) || op > uint64(opMax) {
			return nil, fmt.Errorf("%w: event %d: unknown op %d", ErrBadRecord, i, op)
		}
		e.Op = Op(op)
		if e.Addr, err = d.uvarint(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		if e.Len, err = d.uvarint(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		if e.Dom, err = d.uvarint(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		if e.Perm, err = d.byteField("perm", i); err != nil {
			return nil, err
		}
		if e.Flags, err = d.byteField("flags", i); err != nil {
			return nil, err
		}
		if e.Cost, err = d.uvarint(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		code, err := d.byteField("err", i)
		if err != nil {
			return nil, err
		}
		e.Err = ErrCode(code)
		t.Events = append(t.Events, e)
	}

	hasEnd, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	switch hasEnd {
	case 0:
	case 1:
		nEnd, err := d.count("end")
		if err != nil {
			return nil, err
		}
		t.End = make(map[string]uint64, nEnd)
		for i := 0; i < nEnd; i++ {
			k, err := d.string()
			if err != nil {
				return nil, err
			}
			if t.End[k], err = d.uvarint(); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("%w: bad end-state marker %d", ErrBadRecord, hasEnd)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(d.buf)-d.off)
	}
	return t, nil
}

// decoder walks the byte slice with bounds checking.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: varint overflow at offset %d", ErrBadRecord, d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen || n > uint64(len(d.buf)-d.off) {
		return "", fmt.Errorf("%w: string length %d at offset %d", ErrBadRecord, n, d.off)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// smallInt decodes a field that fits in an int and must be small (header
// geometry like core counts).
func (d *decoder) smallInt(name string) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxSmallField {
		return 0, fmt.Errorf("%w: %s %d out of range", ErrBadRecord, name, v)
	}
	return int(v), nil
}

// count decodes a collection length, bounded by the bytes remaining so a
// forged count cannot drive a huge allocation (every element costs at
// least one byte).
func (d *decoder) count(name string) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.buf)-d.off) {
		return 0, fmt.Errorf("%w: %s count %d exceeds remaining input", ErrBadRecord, name, v)
	}
	return int(v), nil
}

func (d *decoder) byteField(name string, event int) (uint8, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, fmt.Errorf("event %d: %w", event, err)
	}
	if v > 255 {
		return 0, fmt.Errorf("%w: event %d: %s %d out of range", ErrBadRecord, event, name, v)
	}
	return uint8(v), nil
}

func putUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func putString(b []byte, s string) []byte {
	b = putUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// sortedU64Keys returns the map's keys in lexical order.
func sortedU64Keys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
