package serve

import (
	"encoding/json"
	"fmt"
	"io"

	"vdom/internal/metrics"
)

// HealthSchema identifies the health-report JSON format.
const HealthSchema = "vdom-serve-health/v1"

// State is a supervised shard's lifecycle state.
type State int

const (
	// Running: the shard is stepping its workload.
	Running State = iota
	// Recovering: a fault was detected; checkpoint restore + tail
	// replay is in progress (possibly across backoff retries).
	Recovering
	// Quarantined: MaxRetries consecutive recovery failures; the shard
	// is abandoned and its last error preserved for post-mortem.
	Quarantined
	// Drained: the shard finished (op budget, deadline, or cancel) and
	// sealed its result after a final checkpoint.
	Drained
)

// String names the state for reports.
func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Recovering:
		return "recovering"
	case Quarantined:
		return "quarantined"
	case Drained:
		return "drained"
	default:
		return fmt.Sprintf("state-%d", int(s))
	}
}

// MarshalJSON renders the state as its name.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// ShardHealth is one shard's live health snapshot.
type ShardHealth struct {
	// Shard and Seed identify the shard.
	Shard int    `json:"shard"`
	Seed  uint64 `json:"seed"`
	// State is the shard's lifecycle state.
	State State `json:"state"`
	// Ops is the number of workload ops completed; Clock the shard's
	// cumulative cycle clock.
	Ops   int    `json:"ops"`
	Clock uint64 `json:"clock_cycles"`

	// Crashes counts injected crash faults; LastCrash describes the
	// most recent one.
	Crashes   int    `json:"crashes"`
	LastCrash string `json:"last_crash,omitempty"`
	// DetectedByWatchdog / DetectedByAudit split crash detections by
	// trigger.
	DetectedByWatchdog int `json:"detected_by_watchdog"`
	DetectedByAudit    int `json:"detected_by_audit"`
	// PanicFailures counts worker panics isolated into ShardFailures.
	PanicFailures int `json:"panic_failures"`

	// Recoveries counts successful checkpoint-restore passes;
	// TailEvents the trace events replayed across all of them.
	Recoveries int `json:"recoveries"`
	TailEvents int `json:"tail_events"`
	// RecoveryFailures counts failed recovery attempts; Consecutive is
	// the current failure streak (quarantine trips at MaxRetries);
	// Retries counts backoff sleeps taken.
	RecoveryFailures    int `json:"recovery_failures"`
	ConsecutiveFailures int `json:"consecutive_failures"`
	Retries             int `json:"retries"`
	// LastRecoveryNs / MaxRecoveryNs are detection-to-recovered
	// latencies (wall clock).
	LastRecoveryNs uint64 `json:"last_recovery_ns"`
	MaxRecoveryNs  uint64 `json:"max_recovery_ns"`
	// RestoredFromOp is the checkpoint op of the last restore.
	RestoredFromOp int `json:"restored_from_op"`

	// CheckpointWrites counts ring appends; WriteFails pressure-failed
	// or errored appends; Corrupted pressure-corrupted entries;
	// RingFallbacks entries skipped during recovery because they no
	// longer decoded.
	CheckpointWrites     int `json:"checkpoint_writes"`
	CheckpointWriteFails int `json:"checkpoint_write_fails"`
	CorruptedCheckpoints int `json:"corrupted_checkpoints"`
	RingFallbacks        int `json:"ring_fallbacks"`
	// RingLen / RingCap are the ring's occupancy and capacity;
	// LastCheckpointOp the newest entry's op.
	RingLen          int `json:"ring_len"`
	RingCap          int `json:"ring_cap"`
	LastCheckpointOp int `json:"last_checkpoint_op"`

	// LastError preserves the most recent failure (recovery error,
	// quarantine cause, or isolated panic).
	LastError string `json:"last_error,omitempty"`
}

// Health is the fleet-wide health report `vdom-bench serve` emits
// periodically and on exit.
type Health struct {
	// Schema is HealthSchema.
	Schema string `json:"schema"`
	// Seed is the run's base seed.
	Seed uint64 `json:"seed"`
	// Running/Recovering/Quarantined/Drained count shards per state.
	Running     int `json:"running"`
	Recovering  int `json:"recovering"`
	Quarantined int `json:"quarantined"`
	Drained     int `json:"drained"`
	// Fleet-wide rollups of the per-shard counters.
	Ops                  int `json:"ops"`
	Crashes              int `json:"crashes"`
	Recoveries           int `json:"recoveries"`
	RecoveryFailures     int `json:"recovery_failures"`
	PanicFailures        int `json:"panic_failures"`
	CheckpointWrites     int `json:"checkpoint_writes"`
	CheckpointWriteFails int `json:"checkpoint_write_fails"`
	CorruptedCheckpoints int `json:"corrupted_checkpoints"`
	RingFallbacks        int `json:"ring_fallbacks"`
	// Shards holds the per-shard snapshots in shard order.
	Shards []ShardHealth `json:"shards"`
	// Metrics is the merged serve-layer registry snapshot (recovery
	// latency histogram included); only the final report carries it.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// buildHealth rolls per-shard snapshots up into a fleet report.
func buildHealth(seed uint64, shards []ShardHealth, reg *metrics.Registry) *Health {
	h := &Health{Schema: HealthSchema, Seed: seed, Shards: shards}
	for _, s := range shards {
		switch s.State {
		case Running:
			h.Running++
		case Recovering:
			h.Recovering++
		case Quarantined:
			h.Quarantined++
		case Drained:
			h.Drained++
		}
		h.Ops += s.Ops
		h.Crashes += s.Crashes
		h.Recoveries += s.Recoveries
		h.RecoveryFailures += s.RecoveryFailures
		h.PanicFailures += s.PanicFailures
		h.CheckpointWrites += s.CheckpointWrites
		h.CheckpointWriteFails += s.CheckpointWriteFails
		h.CorruptedCheckpoints += s.CorruptedCheckpoints
		h.RingFallbacks += s.RingFallbacks
	}
	if reg != nil {
		h.Metrics = reg.Snapshot()
	}
	return h
}

// WriteJSON renders the report as indented JSON. Output is stable for
// equal reports.
func (h *Health) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}
