package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"vdom/internal/par"
)

// WorkerProc is the coordinator's handle on one spawned worker: its
// pipe ends plus force-kill and reap hooks. Tests satisfy it with
// in-memory pipes; production uses SpawnProcess (proc.go).
type WorkerProc struct {
	// In is the worker's stdin: the coordinator writes assign and
	// shutdown frames here.
	In io.WriteCloser
	// Out is the worker's stdout: hello, heartbeat, and result frames.
	Out io.Reader
	// Kill force-terminates the worker (SIGKILL for a real process).
	// It must be idempotent and safe on an already-dead worker.
	Kill func()
	// Wait reaps the worker after it exits.
	Wait func() error
}

// Spawn brings up the worker for fleet slot id.
type Spawn func(id int) (*WorkerProc, error)

// Config shapes one fleet run.
type Config struct {
	// Workers is the fleet width (number of worker subprocesses).
	Workers int
	// Spawn brings up one worker; nil forces degraded in-process mode.
	Spawn Spawn
	// Exec computes a cell in-process: the degraded path, and the
	// best-effort local fill for quarantined cells.
	Exec Exec
	// Faults configures the seeded transport-fault injector on the
	// coordinator's read side of every worker pipe.
	Faults FaultConfig
	// CellTimeout is the per-cell liveness budget, refreshed by every
	// heartbeat; a stall past it kills the worker and reassigns the
	// cell. Zero means DefaultCellTimeout.
	CellTimeout time.Duration
	// MaxAttempts bounds executions per cell before quarantine; zero
	// means DefaultMaxAttempts.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the deterministic, jitter-free
	// exponential reassignment backoff (see Backoff). Zero means the
	// defaults.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// LocalParallel is the in-process pool width for degraded mode and
	// quarantine fill; zero means 1.
	LocalParallel int
	// KillAfter, when positive, SIGKILLs fleet slot 0 after that many
	// results have merged — the built-in chaos hook the CI smoke and
	// the byte-identity tests use to force a mid-run worker death.
	KillAfter int
	// Logf, when non-nil, receives coordinator progress lines.
	Logf func(format string, args ...any)
}

// Fleet-run defaults.
const (
	DefaultCellTimeout = 60 * time.Second
	DefaultMaxAttempts = 4
	DefaultBackoffBase = 10 * time.Millisecond
	DefaultBackoffCap  = 2 * time.Second
)

func (c Config) withDefaults() Config {
	if c.CellTimeout <= 0 {
		c.CellTimeout = DefaultCellTimeout
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = DefaultBackoffCap
	}
	if c.LocalParallel <= 0 {
		c.LocalParallel = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Backoff is the deterministic, jitter-free reassignment delay after a
// cell's nth failure (1-based): base doubled per prior failure, capped.
// No jitter means a replayed fault schedule replays the exact recovery
// timeline too — the same property serve.Supervisor relies on.
func Backoff(base, cap time.Duration, failures int) time.Duration {
	if failures <= 0 {
		return 0
	}
	d := base
	for i := 1; i < failures; i++ {
		if d >= cap {
			return cap
		}
		d <<= 1
	}
	if d > cap {
		return cap
	}
	return d
}

// cellState tracks one cell through assignment, retries, and merge.
type cellState struct {
	spec       CellSpec
	attempts   int
	eligibleAt time.Time
	lastErr    string
	busy       bool
	done       bool
	result     CellResult
}

// slotState is one fleet slot: the live worker occupying it, or the
// record of its retirement.
type slotState struct {
	id       int
	proc     *WorkerProc
	fr       *faultReader
	gen      int
	alive    bool
	ready    bool
	busyCell int
	deadline time.Time
}

type eventKind int

const (
	evHello eventKind = iota
	evResult
	evBeat
	evDeath
)

type event struct {
	slot, gen int
	kind      eventKind
	result    Result
	err       error
}

type coordinator struct {
	cfg    Config
	cells  []cellState
	slots  []slotState
	rep    *Report
	events chan event
	quit   chan struct{}
	pumps  sync.WaitGroup

	doneCount  int
	killFired  bool
	closing bool
}

// Run distributes specs across a fleet of cfg.Workers subprocesses and
// returns every cell's result in spec order plus the fleet report. The
// merge is byte-identical to running the same specs through cfg.Exec
// in-process: content is deterministic per cell and results merge in
// cell order, so fleet width, worker deaths, transport faults, and
// retries cannot reorder or alter a byte. Run never fails the process:
// cells that exhaust their retries are quarantined in the report (with
// a best-effort local fill), and the caller decides the exit code from
// Report.Healthy.
func Run(cfg Config, specs []CellSpec) ([]CellResult, *Report) {
	cfg = cfg.withDefaults()
	rep := &Report{
		Workers:         cfg.Workers,
		Cells:           len(specs),
		TransportErrors: map[string]uint64{},
		FaultsInjected:  map[string]uint64{},
	}
	cells := make([]cellState, len(specs))
	for i, s := range specs {
		cells[i] = cellState{spec: s}
	}
	c := &coordinator{
		cfg:    cfg,
		cells:  cells,
		rep:    rep,
		events: make(chan event, 256),
		quit:   make(chan struct{}),
	}
	if len(specs) == 0 {
		return nil, rep
	}
	if cfg.Workers <= 0 || cfg.Spawn == nil || !c.spawnFleet() {
		c.runLocal(everyIndex(len(cells)))
		rep.Degraded = true
		return c.results(), rep
	}
	c.loop()
	c.shutdown()
	for i := range c.slots {
		if c.slots[i].fr != nil {
			for k, v := range c.slots[i].fr.counts() {
				rep.FaultsInjected[k] += v
			}
		}
	}
	if len(rep.FaultsInjected) == 0 {
		rep.FaultsInjected = nil
	}
	if len(rep.TransportErrors) == 0 {
		rep.TransportErrors = nil
	}
	return c.results(), rep
}

func everyIndex(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (c *coordinator) results() []CellResult {
	out := make([]CellResult, len(c.cells))
	for i := range c.cells {
		out[i] = c.cells[i].result
	}
	return out
}

// spawnFleet brings up the initial fleet; false means not a single
// worker could start (the graceful-degradation trigger).
func (c *coordinator) spawnFleet() bool {
	c.slots = make([]slotState, c.cfg.Workers)
	alive := 0
	for i := range c.slots {
		c.slots[i] = slotState{id: i, busyCell: -1}
		if c.startWorker(i) {
			alive++
		}
	}
	return alive > 0
}

// startWorker spawns a worker into slot i and starts its pump.
func (c *coordinator) startWorker(i int) bool {
	proc, err := c.cfg.Spawn(i)
	if err != nil {
		c.cfg.Logf("fleet: spawn worker %d: %v", i, err)
		c.slots[i].alive = false
		c.slots[i].proc = nil
		return false
	}
	s := &c.slots[i]
	s.proc = proc
	s.gen++
	s.alive = true
	s.ready = false
	s.busyCell = -1
	s.fr = newFaultReader(proc.Out, faultSeedFor(c.cfg.Faults, i, s.gen))
	c.pumps.Add(1)
	go c.pump(i, s.gen, s.fr)
	return true
}

// faultSeedFor derives a per-pipe fault schedule so every worker pipe
// (and every respawn generation) sees its own deterministic stream.
func faultSeedFor(cfg FaultConfig, slot, gen int) FaultConfig {
	if cfg.enabled() {
		cfg.Seed = cfg.Seed*1000003 + uint64(slot)*31 + uint64(gen)
	}
	return cfg
}

// pump reads one worker pipe and forwards decoded frames as events;
// any read or decode failure becomes a single death event.
func (c *coordinator) pump(slot, gen int, r io.Reader) {
	defer c.pumps.Done()
	br := bufio.NewReader(r)
	for {
		t, payload, err := ReadFrame(br)
		if err != nil {
			if err == io.EOF {
				err = errors.New("fleet: worker pipe closed")
			}
			c.post(event{slot: slot, gen: gen, kind: evDeath, err: err})
			return
		}
		switch t {
		case FrameHello:
			if _, err := DecodeHello(payload); err != nil {
				c.post(event{slot: slot, gen: gen, kind: evDeath, err: err})
				return
			}
			c.post(event{slot: slot, gen: gen, kind: evHello})
		case FrameResult:
			res, err := DecodeResult(payload)
			if err != nil {
				c.post(event{slot: slot, gen: gen, kind: evDeath, err: err})
				return
			}
			c.post(event{slot: slot, gen: gen, kind: evResult, result: res})
		case FrameHeartbeat:
			if _, err := DecodeHeartbeat(payload); err != nil {
				c.post(event{slot: slot, gen: gen, kind: evDeath, err: err})
				return
			}
			c.post(event{slot: slot, gen: gen, kind: evBeat})
		default:
			c.post(event{slot: slot, gen: gen, kind: evDeath,
				err: fmt.Errorf("%w: unexpected frame type %d from worker", ErrBadRecord, t)})
			return
		}
	}
}

func (c *coordinator) post(ev event) {
	select {
	case c.events <- ev:
	case <-c.quit:
	}
}

// loop is the scheduler: assign eligible cells to ready workers, merge
// results, and run the recovery ladder on deaths, stalls, and torn
// transports, until every cell is done or no worker remains.
func (c *coordinator) loop() {
	scanEvery := c.cfg.BackoffBase
	if scanEvery > 10*time.Millisecond {
		scanEvery = 10 * time.Millisecond
	}
	if min := c.cfg.CellTimeout / 8; scanEvery > min && min > 0 {
		scanEvery = min
	}
	if scanEvery <= 0 {
		scanEvery = time.Millisecond
	}
	scan := time.NewTicker(scanEvery)
	defer scan.Stop()
	for c.doneCount < len(c.cells) {
		if c.aliveCount() == 0 {
			// Every slot retired: finish the remainder in-process.
			c.cfg.Logf("fleet: no live workers remain; finishing %d cells in-process", len(c.cells)-c.doneCount)
			c.rep.Degraded = true
			c.runLocal(c.notDone())
			return
		}
		c.tryAssign()
		select {
		case ev := <-c.events:
			c.handle(ev)
		case <-scan.C:
			c.checkTimeouts()
		}
	}
}

func (c *coordinator) aliveCount() int {
	n := 0
	for i := range c.slots {
		if c.slots[i].alive {
			n++
		}
	}
	return n
}

// notDone returns the indices of unfinished, unassigned cells.
func (c *coordinator) notDone() []int {
	var out []int
	for i := range c.cells {
		if !c.cells[i].done {
			out = append(out, i)
		}
	}
	return out
}

// tryAssign pairs every ready idle worker with the lowest-index
// eligible cell.
func (c *coordinator) tryAssign() {
	now := time.Now()
	for si := range c.slots {
		s := &c.slots[si]
		if !s.alive || !s.ready || s.busyCell >= 0 {
			continue
		}
		ci := c.nextEligible(now)
		if ci < 0 {
			return
		}
		c.assign(si, ci, now)
	}
}

// nextEligible picks the lowest-index pending cell whose backoff has
// elapsed; -1 when none is ready.
func (c *coordinator) nextEligible(now time.Time) int {
	for i := range c.cells {
		cell := &c.cells[i]
		if cell.done || cell.busy {
			continue
		}
		if cell.eligibleAt.After(now) {
			continue
		}
		return i
	}
	return -1
}

func (c *coordinator) assign(si, ci int, now time.Time) {
	s := &c.slots[si]
	cell := &c.cells[ci]
	cell.attempts++
	cell.busy = true
	s.busyCell = ci
	s.deadline = now.Add(c.cfg.CellTimeout)
	frame := EncodeAssign(Assign{ID: uint64(ci), Spec: cell.spec})
	if err := WriteFrame(s.proc.In, FrameAssign, frame); err != nil {
		c.cfg.Logf("fleet: assign cell %d to worker %d: %v", ci, s.id, err)
		c.die(si, fmt.Errorf("fleet: assign write: %w", err))
	}
}

func (c *coordinator) handle(ev event) {
	if ev.slot < 0 || ev.slot >= len(c.slots) {
		return
	}
	s := &c.slots[ev.slot]
	if !s.alive || ev.gen != s.gen {
		return // stale event from a killed generation
	}
	switch ev.kind {
	case evHello:
		s.ready = true
	case evBeat:
		if s.busyCell >= 0 {
			s.deadline = time.Now().Add(c.cfg.CellTimeout)
		}
	case evResult:
		c.handleResult(ev.slot, ev.result)
	case evDeath:
		c.rep.TransportErrors[classify(ev.err)]++
		c.die(ev.slot, ev.err)
	}
}

func (c *coordinator) handleResult(si int, res Result) {
	s := &c.slots[si]
	ci := int(res.ID)
	if ci < 0 || ci >= len(c.cells) {
		c.die(si, fmt.Errorf("%w: result for unknown cell %d", ErrBadRecord, res.ID))
		return
	}
	if s.busyCell == ci {
		s.busyCell = -1
	}
	cell := &c.cells[ci]
	if cell.done {
		return // duplicate or late delivery; first valid result won
	}
	cell.busy = false
	if res.Cell.Err != "" {
		// The cell failed inside a healthy worker; the worker stays,
		// the cell retries.
		c.fail(ci, res.Cell.Err)
		return
	}
	c.complete(ci, res.Cell)
	if c.cfg.KillAfter > 0 && !c.killFired && c.doneCount >= c.cfg.KillAfter {
		// Chaos hook: SIGKILL a worker that is mid-cell (preferring
		// slot 0), so the death provably forces a reassignment. If all
		// workers happen to be idle at this instant, re-arm on the
		// next merged result.
		target := -1
		for si := range c.slots {
			if c.slots[si].alive && c.slots[si].proc != nil && c.slots[si].busyCell >= 0 {
				target = si
				if si == 0 {
					break
				}
			}
		}
		if target >= 0 {
			c.killFired = true
			c.cfg.Logf("fleet: chaos hook: killing worker %d mid-cell after %d results", c.slots[target].id, c.doneCount)
			c.slots[target].proc.Kill()
		}
	}
}

func (c *coordinator) complete(ci int, res CellResult) {
	cell := &c.cells[ci]
	cell.result = res
	cell.done = true
	cell.busy = false
	c.doneCount++
	if cell.attempts > 1 {
		c.rep.Recoveries++
	}
}

// fail runs the retry ladder for one failed execution: requeue with
// deterministic backoff, or quarantine once attempts are exhausted.
func (c *coordinator) fail(ci int, cause string) {
	cell := &c.cells[ci]
	cell.busy = false
	cell.lastErr = cause
	if cell.attempts >= c.cfg.MaxAttempts {
		c.quarantine(ci)
		return
	}
	cell.eligibleAt = time.Now().Add(Backoff(c.cfg.BackoffBase, c.cfg.BackoffCap, cell.attempts))
}

// quarantine retires a cell from the fleet and fills its slot with a
// best-effort in-process execution so the merged output stays complete;
// the quarantine record (and the run's failing exit) remains either way.
func (c *coordinator) quarantine(ci int) {
	cell := &c.cells[ci]
	c.cfg.Logf("fleet: quarantining cell %s[%d] after %d attempts: %s",
		cell.spec.Grid, cell.spec.Index, cell.attempts, cell.lastErr)
	c.rep.Quarantined = append(c.rep.Quarantined, QuarantinedCell{
		Grid:      cell.spec.Grid,
		Index:     cell.spec.Index,
		Attempts:  cell.attempts,
		LastError: cell.lastErr,
	})
	res := runGuarded(c.cfg.Exec, cell.spec)
	c.complete(ci, res)
}

// die retires slot si's current worker, requeues its in-flight cell,
// and attempts a respawn; a failed respawn retires the slot for good.
func (c *coordinator) die(si int, cause error) {
	s := &c.slots[si]
	if !s.alive {
		return
	}
	c.rep.WorkerDeaths++
	c.cfg.Logf("fleet: worker %d died: %v", s.id, cause)
	s.alive = false
	s.ready = false
	if s.fr != nil {
		for k, v := range s.fr.counts() {
			c.rep.FaultsInjected[k] += v
		}
		s.fr = nil
	}
	if s.proc != nil {
		s.proc.In.Close()
		s.proc.Kill()
		if w := s.proc.Wait; w != nil {
			go w()
		}
		s.proc = nil
	}
	if ci := s.busyCell; ci >= 0 {
		s.busyCell = -1
		c.fail(ci, cause.Error())
	}
	if !c.closing {
		if c.startWorker(si) {
			c.rep.Respawns++
		} else {
			c.cfg.Logf("fleet: slot %d retired (respawn failed)", si)
		}
	}
}

// checkTimeouts kills workers whose in-flight cell's heartbeat stalled
// past the per-cell budget; die requeues the cell.
func (c *coordinator) checkTimeouts() {
	now := time.Now()
	for si := range c.slots {
		s := &c.slots[si]
		if s.alive && s.busyCell >= 0 && now.After(s.deadline) {
			c.rep.Timeouts++
			c.die(si, fmt.Errorf("fleet: worker %d heartbeat stalled past %v on cell %d", s.id, c.cfg.CellTimeout, s.busyCell))
		}
	}
}

// runLocal executes the given cell indices with the in-process pool
// (the degraded path); cells that fail locally are quarantined.
func (c *coordinator) runLocal(indices []int) {
	if len(indices) == 0 {
		return
	}
	results := make([]CellResult, len(indices))
	jobs := make([]func(), len(indices))
	for k, ci := range indices {
		k, ci := k, ci
		jobs[k] = func() { results[k] = runGuarded(c.cfg.Exec, c.cells[ci].spec) }
	}
	par.Do(c.cfg.LocalParallel, len(jobs), func(i int) { jobs[i]() })
	for k, ci := range indices {
		cell := &c.cells[ci]
		cell.attempts++
		if results[k].Err != "" {
			cell.lastErr = results[k].Err
			c.rep.Quarantined = append(c.rep.Quarantined, QuarantinedCell{
				Grid:      cell.spec.Grid,
				Index:     cell.spec.Index,
				Attempts:  cell.attempts,
				LastError: cell.lastErr,
			})
		}
		c.complete(ci, results[k])
	}
}

// shutdown drains the fleet: shutdown frames, pipe closes, a hard kill
// backstop, and a join on every pump.
func (c *coordinator) shutdown() {
	c.closing = true
	close(c.quit)
	for si := range c.slots {
		s := &c.slots[si]
		if !s.alive || s.proc == nil {
			continue
		}
		_ = WriteFrame(s.proc.In, FrameShutdown, nil)
		s.proc.In.Close()
	}
	var reap sync.WaitGroup
	for si := range c.slots {
		s := &c.slots[si]
		if !s.alive || s.proc == nil {
			continue
		}
		proc := s.proc
		s.alive = false
		s.proc = nil
		reap.Add(1)
		go func() {
			defer reap.Done()
			done := make(chan struct{})
			go func() {
				if proc.Wait != nil {
					proc.Wait()
				}
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				proc.Kill()
				<-done
			}
		}()
	}
	reap.Wait()
	c.pumps.Wait()
}

// classify maps a pump failure to its transport-error class for the
// fleet report.
func classify(err error) string {
	switch {
	case errors.Is(err, ErrBadMagic):
		return "badMagic"
	case errors.Is(err, ErrBadVersion):
		return "badVersion"
	case errors.Is(err, ErrBadDigest):
		return "badDigest"
	case errors.Is(err, ErrTruncated):
		return "truncated"
	case errors.Is(err, ErrBadRecord):
		return "malformed"
	default:
		return "pipe"
	}
}
