package workload

import (
	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/epk"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/par"
)

// Table3Row is one measured row of Table 3 ("Average cycles of common
// operations"). ARM value 0 with Defined=false means "undefined", as the
// paper marks VMFUNC on ARM.
type Table3Row struct {
	Operation  string
	X86        float64
	ARM        float64
	ARMDefined bool
}

// Table3 measures every row of Table 3 on both simulated architectures.
func Table3() []Table3Row {
	return Table3Parallel(1)
}

// Table3Parallel is Table3 with the measured cells (each an isolated
// machine/kernel fixture) fanned out across at most `workers` goroutines.
// Cells write disjoint row fields and the parameter-table rows are filled
// inline, so the result is identical for every worker count.
func Table3Parallel(workers int) []Table3Row {
	rows := []Table3Row{
		{Operation: "empty API call return", ARMDefined: true},
		{Operation: "empty syscall return", ARMDefined: true},
		{Operation: "update PKRU or DACR", ARMDefined: true},
		{Operation: "VMFUNC"},
		{Operation: "fast wrvdr API call return", ARMDefined: true},
		{Operation: "secure wrvdr API call return", ARMDefined: true},
		{Operation: "secure wrvdr with 4KB eviction", ARMDefined: true},
		{Operation: "secure wrvdr with 2MB eviction", ARMDefined: true},
		{Operation: "secure wrvdr with 64MB eviction", ARMDefined: true},
		{Operation: "secure wrvdr with VDS switch", ARMDefined: true},
	}
	type cell struct {
		row     int
		arch    cycles.Arch
		measure func() float64
	}
	var cells []cell
	for _, arch := range []cycles.Arch{cycles.X86, cycles.ARM} {
		arch := arch
		p := cycles.ParamsFor(arch)
		set := func(i int, v float64) {
			if arch == cycles.X86 {
				rows[i].X86 = v
			} else {
				rows[i].ARM = v
			}
		}
		set(0, float64(p.CallReturn))
		set(1, float64(p.SyscallReturn))
		set(2, float64(p.PermRegWrite))
		if arch == cycles.X86 {
			set(3, float64(epk.VMFuncCycles(1)))
		}
		cells = append(cells,
			cell{4, arch, func() float64 { return measureWrvdr(arch, false) }},
			cell{5, arch, func() float64 { return measureWrvdr(arch, true) }},
			cell{6, arch, func() float64 { return measureEviction(arch, pagetable.PageSize) }},
			cell{7, arch, func() float64 { return measureEviction(arch, pagetable.PMDSize) }},
			cell{8, arch, func() float64 { return measureEviction(arch, 64<<20) }},
			cell{9, arch, func() float64 { return measureVDSSwitch(arch) }},
		)
	}
	par.Do(workers, len(cells), func(i int) {
		v := cells[i].measure()
		if cells[i].arch == cycles.X86 {
			rows[cells[i].row].X86 = v
		} else {
			rows[cells[i].row].ARM = v
		}
	})
	return rows
}

type t3fixture struct {
	proc *kernel.Process
	mgr  *core.Manager
	task *kernel.Task
	next pagetable.VAddr
}

func newT3(arch cycles.Arch, secure bool, nas int) *t3fixture {
	mach := hw.NewMachine(hw.Config{Arch: arch, NumCores: 2, TLBCapacity: 0})
	k := kernel.New(kernel.Config{Machine: mach, VDomEnabled: true})
	proc := k.NewProcess()
	pol := core.DefaultPolicy()
	pol.SecureGate = secure
	mgr := core.Attach(proc, pol)
	task := proc.NewTask(0)
	if _, err := mgr.VdrAlloc(task, nas); err != nil {
		panic(err)
	}
	return &t3fixture{proc: proc, mgr: mgr, task: task, next: 0x40_0000_0000}
}

// region maps and protects `bytes` under a fresh vdom, fully populated.
func (f *t3fixture) region(bytes uint64) core.VdomID {
	base := f.next
	f.next += pagetable.VAddr(bytes) + 8*pagetable.PMDSize
	// Keep 2 MiB alignment for the PMD fast path.
	f.next = pagetable.VAddr(uint64(f.next+pagetable.PMDSize-1) &^ (pagetable.PMDSize - 1))
	if _, err := f.task.Mmap(base, bytes, true); err != nil {
		panic(err)
	}
	d, _ := f.mgr.AllocVdom(false)
	if _, err := f.mgr.Mprotect(f.task, base, bytes, d); err != nil {
		panic(err)
	}
	if _, err := f.proc.AS().Populate(f.proc.AS().Shadow(), base, bytes); err != nil {
		panic(err)
	}
	// Fault the region into the initial VDS so evictions operate on
	// present pages.
	if _, err := f.mgr.WrVdr(f.task, d, core.VPermReadWrite); err != nil {
		panic(err)
	}
	if _, err := f.proc.AS().Populate(f.mgr.VDROf(f.task).Current().Table(), base, bytes); err != nil {
		panic(err)
	}
	if _, err := f.mgr.WrVdr(f.task, d, core.VPermNone); err != nil {
		panic(err)
	}
	return d
}

// measureWrvdr measures a steady-state wrvdr on a mapped vdom.
func measureWrvdr(arch cycles.Arch, secure bool) float64 {
	f := newT3(arch, secure, 2)
	d := f.region(pagetable.PageSize)
	var total cycles.Cost
	const n = 64
	perm := []core.VPerm{core.VPermReadWrite, core.VPermRead}
	for i := 0; i < n; i++ {
		c, err := f.mgr.WrVdr(f.task, d, perm[i%2])
		if err != nil {
			panic(err)
		}
		total += c
	}
	return float64(total) / n
}

// measureEviction measures the steady-state cost of a wrvdr that must
// evict a `bytes`-sized vdom and remap another of the same size, with the
// thread confined to one address space (nas=1).
func measureEviction(arch cycles.Arch, bytes uint64) float64 {
	f := newT3(arch, true, 1)
	n := core.UsablePdomsPerVDS + 2
	doms := make([]core.VdomID, n)
	for i := range doms {
		doms[i] = f.region(bytes)
	}
	// Warm up: activate each once (fills all pdoms, starts evicting),
	// then measure only the activations that actually evict — the row
	// is "wrvdr WITH eviction".
	cycle := func(measure bool) float64 {
		var total cycles.Cost
		count := 0
		for _, d := range doms {
			pre := f.mgr.Stats.Evictions
			c, err := f.mgr.WrVdr(f.task, d, core.VPermReadWrite)
			if err != nil {
				panic(err)
			}
			if measure && f.mgr.Stats.Evictions > pre {
				total += c
				count++
			}
			if _, err := f.mgr.WrVdr(f.task, d, core.VPermNone); err != nil {
				panic(err)
			}
		}
		if count == 0 {
			return 0
		}
		return float64(total) / float64(count)
	}
	cycle(false)
	cycle(false)
	return cycle(true)
}

// measureVDSSwitch measures a steady-state wrvdr whose activation is a pgd
// switch to another attached VDS.
func measureVDSSwitch(arch cycles.Arch) float64 {
	f := newT3(arch, true, 4)
	n := core.UsablePdomsPerVDS + 4
	doms := make([]core.VdomID, n)
	for i := range doms {
		doms[i] = f.region(pagetable.PageSize)
	}
	cycle := func(measure bool) float64 {
		var total cycles.Cost
		count := 0
		for _, d := range doms {
			c, err := f.mgr.WrVdr(f.task, d, core.VPermReadWrite)
			if err != nil {
				panic(err)
			}
			if measure {
				total += c
				count++
			}
			if _, err := f.mgr.WrVdr(f.task, d, core.VPermNone); err != nil {
				panic(err)
			}
		}
		return float64(total) / float64(count)
	}
	cycle(false)
	// Steady state: alternate between the two vdoms with different home
	// VDSes to make every activation a switch.
	a, b := doms[0], doms[n-1]
	var total cycles.Cost
	const rounds = 32
	for i := 0; i < rounds; i++ {
		for _, d := range []core.VdomID{a, b} {
			c, err := f.mgr.WrVdr(f.task, d, core.VPermReadWrite)
			if err != nil {
				panic(err)
			}
			total += c
			if _, err := f.mgr.WrVdr(f.task, d, core.VPermNone); err != nil {
				panic(err)
			}
		}
	}
	return float64(total) / (2 * rounds)
}
