package core

import (
	"fmt"
	"sort"

	"vdom/internal/kernel"
	"vdom/internal/pagetable"
)

// AuditInvariants walks the manager's private state and reports every
// violated invariant as a human-readable string (empty means coherent).
// It covers the metadata the domain virtualization algorithm must keep in
// lockstep: VDS domain maps and their inverse, #thread reference counters,
// thread VDRs and their hardware register images, and the domain tags of
// every protected page in every table. The chaos auditor calls it after
// each injected fault; tests call it directly.
func (m *Manager) AuditInvariants() []string {
	var v []string
	bad := func(format string, args ...any) {
		v = append(v, fmt.Sprintf(format, args...))
	}

	// Registry coherence: byTable must be the exact inverse of vdses.
	for _, vds := range m.vdses {
		if m.byTable[vds.table] != vds {
			bad("VDS %d: table not registered in byTable", vds.id)
		}
	}
	for _, vds := range m.byTable {
		if !contains(m.vdses, vds) {
			bad("byTable holds reaped VDS %d", vds.id)
		}
	}

	for _, vds := range m.vdses {
		m.auditVDS(vds, bad)
	}
	for task, vdr := range m.vdrs {
		m.auditVDR(task, vdr, bad)
	}
	m.auditPageTags(bad)

	sort.Strings(v)
	return v
}

// auditVDS checks one VDS's domain map, inverse map, eviction records and
// #thread counters.
func (m *Manager) auditVDS(vds *VDS, bad func(string, ...any)) {
	used := 0
	for p := firstUsablePdom; p < vds.numPdoms; p++ {
		e := vds.domainMap[p]
		if !e.used {
			continue
		}
		used++
		d := e.vdom
		if got, ok := vds.vdomPdom[d]; !ok || got != pagetable.Pdom(p) {
			bad("VDS %d: domainMap[%d]=vdom %d but inverse map says pdom %v (ok=%v)",
				vds.id, p, d, got, ok)
		}
		if !m.live[d] {
			bad("VDS %d: maps dead vdom %d at pdom %d", vds.id, d, p)
		}
		if _, evicted := vds.evicted[d]; evicted {
			bad("VDS %d: vdom %d is both mapped and recorded evicted", vds.id, d)
		}
		// Recount the #thread column from the resident threads' VDRs.
		want := 0
		for t := range vds.threads {
			if vdr := m.vdrs[t]; vdr != nil && vdr.perms.get(d).Accessible() {
				want++
			}
		}
		if e.threads != want {
			bad("VDS %d: vdom %d #thread counter is %d, recount says %d",
				vds.id, d, e.threads, want)
		}
		if e.lastUse > vds.clock {
			bad("VDS %d: vdom %d lastUse %d ahead of clock %d", vds.id, d, e.lastUse, vds.clock)
		}
	}
	if used != len(vds.vdomPdom) {
		bad("VDS %d: %d used pdoms but %d inverse entries", vds.id, used, len(vds.vdomPdom))
	}
	for t := range vds.threads {
		vdr := m.vdrs[t]
		if vdr == nil {
			bad("VDS %d: resident thread %d has no VDR", vds.id, t.TID())
			continue
		}
		if vdr.current != vds {
			bad("VDS %d: resident thread %d is current in VDS %d", vds.id, t.TID(), vdr.current.id)
		}
	}
}

// auditVDR checks one thread's VDR against its kernel task state and its
// hardware permission-register image.
func (m *Manager) auditVDR(task *kernel.Task, vdr *VDR, bad func(string, ...any)) {
	cur := vdr.current
	if cur == nil {
		bad("thread %d: VDR with no current VDS", task.TID())
		return
	}
	if !contains(vdr.vdses, cur) {
		bad("thread %d: current VDS %d not in attachment list", task.TID(), cur.id)
	}
	if !cur.threads[task] {
		bad("thread %d: not resident in its current VDS %d", task.TID(), cur.id)
	}
	if task.Table() != cur.table || task.ASID() != cur.asid {
		bad("thread %d: task runs (table=%p asid=%d), current VDS %d is (table=%p asid=%d)",
			task.TID(), task.Table(), task.ASID(), cur.id, cur.table, cur.asid)
	}
	for i, perm := range vdr.perms {
		if d := VdomID(i); !m.live[d] && perm != VPermNone {
			bad("thread %d: VDR holds %v on dead vdom %d", task.TID(), perm, d)
		}
	}
	// The saved register image must equal a fresh synthesis from the VDR
	// and the current domain map (what syncRegister maintains).
	if got, want := task.SavedPerm(), m.registerImage(vdr); got != want {
		bad("thread %d: saved perm register %#x, VDR+domain map say %#x", task.TID(), got, want)
	}
}

// auditPageTags verifies that every page of every live vdom's areas
// carries the right domain tag in every table: the mapped pdom where the
// owning vdom is mapped, access-never where it is not (including the
// shadow table, which must never expose protected memory). Pages evicted
// through the PMD-disable fast path keep their old tags but are
// unreachable (the walk stops at the disabled PMD), so they audit clean.
func (m *Manager) auditPageTags(bad func(string, ...any)) {
	shadow := m.proc.AS().Shadow()
	for d := VdomID(1); d < m.nextVdom; d++ {
		if !m.live[d] {
			continue
		}
		for _, area := range m.vdt.Areas(d) {
			for off := uint64(0); off < area.Length; off += pagetable.PageSize {
				addr := area.Start + pagetable.VAddr(off)
				if wr := shadow.Walk(addr); wr.Present && wr.PTE.Pdom != AccessNeverPdom {
					bad("shadow: vdom %d page %#x present with pdom %d (want access-never)",
						d, uint64(addr), wr.PTE.Pdom)
				}
				for _, vds := range m.vdses {
					wr := vds.table.Walk(addr)
					if !wr.Present {
						continue // not faulted in, or PMD-disabled
					}
					if p, mapped := vds.vdomPdom[d]; mapped {
						if wr.PTE.Pdom != p {
							bad("VDS %d: vdom %d page %#x tagged pdom %d, domain map says %d",
								vds.id, d, uint64(addr), wr.PTE.Pdom, p)
						}
					} else if wr.PTE.Pdom != AccessNeverPdom {
						bad("VDS %d: unmapped vdom %d page %#x reachable with pdom %d",
							vds.id, d, uint64(addr), wr.PTE.Pdom)
					}
				}
			}
		}
	}
}
