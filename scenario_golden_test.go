package vdom

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vdom/internal/scenario"
)

// updateScenarios rewrites the committed spec files under
// testdata/scenarios/ from the bundled library. Run
// `go test -run TestScenarioGolden -update-scenarios .` after an
// intentional change to a bundled scenario.
var updateScenarios = flag.Bool("update-scenarios", false, "rewrite testdata/scenarios spec files")

const scenarioDir = "testdata/scenarios"

// TestScenarioGolden pins the committed vdom-scenario/v1 spec files to
// the bundled library: each testdata/scenarios/<name>.json must be the
// canonical encoding of its library spec byte-for-byte, and must decode
// back to a spec whose re-encoding is a fixed point. The committed files
// are what CI and the documentation drive `vdom-bench scenario` with, so
// drift here means the docs and the library disagree.
func TestScenarioGolden(t *testing.T) {
	for _, spec := range scenario.Library() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			path := filepath.Join(scenarioDir, spec.Name+".json")
			enc := scenario.Encode(spec)

			if *updateScenarios {
				if err := os.MkdirAll(scenarioDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, enc, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(enc))
				return
			}

			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden spec (run with -update-scenarios): %v", err)
			}
			if !bytes.Equal(enc, golden) {
				t.Fatalf("library spec %s no longer matches its committed file (%d vs %d bytes); run with -update-scenarios if the change is intentional",
					spec.Name, len(enc), len(golden))
			}

			dec, err := scenario.Decode(golden)
			if err != nil {
				t.Fatalf("decode committed spec: %v", err)
			}
			if re := scenario.Encode(dec); !bytes.Equal(re, golden) {
				t.Fatalf("committed spec %s is not an encode fixed point", spec.Name)
			}
		})
	}
}
