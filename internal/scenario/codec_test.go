package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// validSpecBytes is a canonical encoding of the first library spec.
func validSpecBytes(t testing.TB) []byte {
	t.Helper()
	return Encode(Library()[0])
}

func TestDecodeLibraryFixedPoint(t *testing.T) {
	for _, want := range Library() {
		t.Run(want.Name, func(t *testing.T) {
			data := Encode(want)
			got, err := Decode(data)
			if err != nil {
				t.Fatalf("decode canonical encoding: %v", err)
			}
			if !bytes.Equal(Encode(got), data) {
				t.Fatalf("decode → re-encode is not a fixed point:\n%s\nvs\n%s", Encode(got), data)
			}
		})
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := string(validSpecBytes(t))
	cases := []struct {
		name string
		data string
		want error
	}{
		{"empty", "", ErrTruncated},
		{"truncated-mid-object", valid[:len(valid)/2], ErrTruncated},
		{"truncated-mid-string", `{"format": "vdom-scen`, ErrTruncated},
		{"not-json", "\x00\x01\x02garbage", ErrBadRecord},
		{"wrong-magic", `{"format": "vdom-trace/v1"}`, ErrBadMagic},
		{"missing-magic", `{"name": "x"}`, ErrBadMagic},
		{"future-version", `{"format": "vdom-scenario/v2"}`, ErrBadVersion},
		{"unknown-field", strings.Replace(valid, `"name"`, `"nmae"`, 1), ErrBadRecord},
		{"trailing-data", valid + `{"again": true}`, ErrBadRecord},
		{"oversized", `{"format": "vdom-scenario/v1", "notes": "` + strings.Repeat("x", maxSpecBytes) + `"}`, ErrBadRecord},
		{
			"no-phases",
			`{"format": "vdom-scenario/v1", "name": "x", "seed": 1, "phases": []}`,
			ErrBadRecord,
		},
		{
			"bad-phase-zero-ops",
			`{"format": "vdom-scenario/v1", "name": "x", "seed": 1, "phases": [
				{"name": "p", "clients": {"start": 2}, "ops": 0, "domains_per_client": 2}]}`,
			ErrBadRecord,
		},
		{
			"bad-phase-domains",
			`{"format": "vdom-scenario/v1", "name": "x", "seed": 1, "phases": [
				{"name": "p", "clients": {"start": 2}, "ops": 10, "domains_per_client": 9999}]}`,
			ErrBadRecord,
		},
		{
			"overlong-ramp",
			`{"format": "vdom-scenario/v1", "name": "x", "seed": 1, "phases": [
				{"name": "p", "clients": {"start": 2, "end": 8, "steps": 17}, "ops": 10, "domains_per_client": 2}]}`,
			ErrBadRecord,
		},
		{
			"bad-lifetime-dist",
			`{"format": "vdom-scenario/v1", "name": "x", "seed": 1, "phases": [
				{"name": "p", "clients": {"start": 2}, "ops": 10, "domains_per_client": 2,
				 "lifetime": {"dist": "zipf", "mean_ops": 4}}]}`,
			ErrBadRecord,
		},
		{
			"bad-fault-probability",
			`{"format": "vdom-scenario/v1", "name": "x", "seed": 1, "phases": [
				{"name": "p", "clients": {"start": 2}, "ops": 10, "domains_per_client": 2,
				 "faults": {"drop_ipi": 1.5}}]}`,
			ErrBadRecord,
		},
		{
			"bad-crash-kind",
			`{"format": "vdom-scenario/v1", "name": "x", "seed": 1, "phases": [
				{"name": "p", "clients": {"start": 2}, "ops": 10, "domains_per_client": 2}],
			 "crash": {"kinds": ["meteor-strike"]}}`,
			ErrBadRecord,
		},
		{
			"duplicate-phase-names",
			`{"format": "vdom-scenario/v1", "name": "x", "seed": 1, "phases": [
				{"name": "p", "clients": {"start": 2}, "ops": 10, "domains_per_client": 2},
				{"name": "p", "clients": {"start": 2}, "ops": 10, "domains_per_client": 2}]}`,
			ErrBadRecord,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.data))
			if err == nil {
				t.Fatalf("decode unexpectedly succeeded")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("decode error %v, want %v", err, tc.want)
			}
		})
	}
}

// FuzzScenarioDecode checks the decoder never panics and that every
// accepted input's decoded form is a canonical fixed point: re-encoding
// and re-decoding reproduces the identical spec bytes. Rejections must
// carry exactly one of the format's typed sentinels.
func FuzzScenarioDecode(f *testing.F) {
	for _, s := range Library() {
		f.Add(Encode(s))
	}
	f.Add([]byte(`{"format": "vdom-scenario/v1"}`))
	f.Add([]byte(`{"format": "vdom-scenario/v99", "name": "future"}`))
	f.Add([]byte(`{"format": "vdom-trace/v1"}`))
	f.Add([]byte(`{"name": "x"`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadRecord) {
				t.Fatalf("rejection carries no typed sentinel: %v", err)
			}
			return
		}
		enc := Encode(s)
		s2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !bytes.Equal(Encode(s2), enc) {
			t.Fatalf("encode ∘ decode is not a fixed point")
		}
	})
}
