package workload

import (
	"bytes"
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/metrics"
)

// TestMetricsAttributionExact is the observability layer's core
// invariant: for every Table 4 system and pattern, the registry's
// per-(layer, op) cycle attribution sums to exactly the harness's
// independently measured grand total — nothing double-counted, nothing
// dropped.
func TestMetricsAttributionExact(t *testing.T) {
	for _, sys := range []PatternSystem{
		PatternVDomSecure, PatternVDomFast, PatternVDomEvict,
		PatternLibmpk, PatternEPK,
	} {
		for _, pat := range []Pattern{Sequential, SwitchTriggering} {
			reg := metrics.New()
			res := RunPattern(PatternConfig{
				Arch: cycles.X86, System: sys, Pattern: pat,
				NumVdoms: 20, Rounds: 3, Metrics: reg,
			})
			if res.TotalCycles == 0 {
				t.Errorf("%v/%v: zero total", sys, pat)
			}
			if reg.TotalCycles() != res.TotalCycles {
				t.Errorf("%v/%v: registry attributes %d cycles, harness measured %d (diff %d)",
					sys, pat, reg.TotalCycles(), res.TotalCycles,
					int64(reg.TotalCycles())-int64(res.TotalCycles))
			}
			if err := reg.Snapshot().CheckConsistency(); err != nil {
				t.Errorf("%v/%v: %v", sys, pat, err)
			}
		}
	}
}

// TestPatternMetricsOffUnchanged: attaching a registry must observe, not
// perturb — the measured averages are identical with metrics on and off.
func TestPatternMetricsOffUnchanged(t *testing.T) {
	cfg := PatternConfig{Arch: cycles.X86, System: PatternVDomSecure,
		Pattern: SwitchTriggering, NumVdoms: 16, Rounds: 3}
	off := RunPattern(cfg)
	cfg.Metrics = metrics.New()
	cfg.Trace = metrics.NewTrace()
	on := RunPattern(cfg)
	if off.AvgCycles != on.AvgCycles || off.AvgTouchCycles != on.AvgTouchCycles ||
		off.Activations != on.Activations || off.TotalCycles != on.TotalCycles {
		t.Errorf("metrics changed results: off=%+v on=%+v", off, on)
	}
}

// TestPatternObservabilityDeterministic: two identical runs produce
// byte-identical snapshot and trace JSON.
func TestPatternObservabilityDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		reg := metrics.New()
		tr := metrics.NewTrace()
		RunPattern(PatternConfig{Arch: cycles.X86, System: PatternVDomFast,
			Pattern: SwitchTriggering, NumVdoms: 20, Rounds: 3,
			Metrics: reg, Trace: tr})
		var m, j bytes.Buffer
		if err := reg.WriteJSON(&m); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		return m.Bytes(), j.Bytes()
	}
	m1, t1 := run()
	m2, t2 := run()
	if !bytes.Equal(m1, m2) {
		t.Error("metrics snapshots differ between identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("traces differ between identical runs")
	}
	if len(t1) == 0 || !bytes.Contains(t1, []byte("traceEvents")) {
		t.Error("trace output empty or malformed")
	}
}

// TestHttpdSimTrace: the discrete-event scheduler's timeline reaches the
// trace sink, deterministically.
func TestHttpdSimTrace(t *testing.T) {
	run := func() []byte {
		tr := metrics.NewTrace()
		RunHttpd(HttpdConfig{Arch: cycles.X86, System: VDom, Clients: 2,
			RequestsPerClient: 2, Trace: tr})
		var b bytes.Buffer
		if err := tr.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	b1 := run()
	if !bytes.Contains(b1, []byte("httpd-worker-0")) {
		t.Error("no scheduler spans for httpd workers in trace")
	}
	if !bytes.Equal(b1, run()) {
		t.Error("httpd sim trace not deterministic")
	}
}
