package chaos

import (
	"fmt"

	"vdom/internal/core"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

// Violation is one detected incoherence between layers.
type Violation struct {
	// Core is the core whose TLB holds the offending state, or -1 for
	// manager-internal violations.
	Core int
	// Desc describes the violation.
	Desc string
}

// String renders the violation.
func (v Violation) String() string {
	if v.Core < 0 {
		return v.Desc
	}
	return fmt.Sprintf("core %d: %s", v.Core, v.Desc)
}

// Audit performs the full cross-layer consistency check: every manager's
// private metadata (domain maps, VDRs, register images, page tags) via
// core.Manager.AuditInvariants, then every core's TLB against the address
// space each cached ASID belongs to. A healthy system — even one under
// active fault injection, thanks to the degradation paths — reports no
// violations.
//
// TLB entries under a retired ASID ("zombies") are legal: the kernel
// defers ASID reuse until a generation rollover has flushed every TLB, so
// they can never be hit again. Entries under a live ASID must agree with
// that address space's page table: present translation, matching frame,
// matching domain tag, and no write permission beyond the PTE's. A cached
// read-only entry for a now-writable page is benign staleness (the next
// write faults and upgrades) and is not flagged.
func Audit(m *hw.Machine, k *kernel.Kernel, mgrs ...*core.Manager) []Violation {
	return AuditOwners(m, k, nil, mgrs...)
}

// AuditOwners is Audit with extra ASID ownership: owners maps live ASIDs
// to their page tables for protection systems the auditor has no manager
// handle for (the DPTI soak owns per-domain tables this way).
func AuditOwners(m *hw.Machine, k *kernel.Kernel, owners map[tlb.ASID]*pagetable.Table, mgrs ...*core.Manager) []Violation {
	var out []Violation
	for _, mgr := range mgrs {
		for _, desc := range mgr.AuditInvariants() {
			out = append(out, Violation{Core: -1, Desc: desc})
		}
	}

	// Map every live ASID to the page table it tags translations of.
	byASID := make(map[tlb.ASID]*pagetable.Table)
	for _, mgr := range mgrs {
		proc := mgr.Process()
		for _, t := range proc.Tasks() {
			byASID[t.BaseASID()] = proc.AS().Shadow()
		}
		for _, vds := range mgr.VDSes() {
			byASID[vds.ASID()] = vds.Table()
		}
	}
	for a, t := range owners {
		byASID[a] = t
	}

	for id := 0; id < m.NumCores(); id++ {
		coreID := id
		m.Core(id).TLB().Each(func(e tlb.Entry) {
			table, known := byASID[e.ASID]
			if !known {
				if k.ASIDLive(e.ASID) {
					out = append(out, Violation{Core: coreID, Desc: fmt.Sprintf(
						"entry (asid %d, vpn %#x) under a live ASID no address space owns",
						e.ASID, e.VPN)})
				}
				return // zombie ASID: unreachable until a rollover flush
			}
			addr := pagetable.VAddr(e.VPN * pagetable.PageSize)
			wr := table.Walk(addr)
			switch {
			case wr.PMDDisabled:
				out = append(out, Violation{Core: coreID, Desc: fmt.Sprintf(
					"entry (asid %d, vpn %#x) survives under a PMD-disabled region", e.ASID, e.VPN)})
			case !wr.Present:
				out = append(out, Violation{Core: coreID, Desc: fmt.Sprintf(
					"stale entry (asid %d, vpn %#x): translation no longer present", e.ASID, e.VPN)})
			case wr.PTE.Frame != e.Frame:
				out = append(out, Violation{Core: coreID, Desc: fmt.Sprintf(
					"entry (asid %d, vpn %#x) maps frame %d, PTE says %d",
					e.ASID, e.VPN, e.Frame, wr.PTE.Frame)})
			case wr.PTE.Pdom != e.Pdom:
				out = append(out, Violation{Core: coreID, Desc: fmt.Sprintf(
					"entry (asid %d, vpn %#x) tagged pdom %d, PTE says %d — domain revocation leak",
					e.ASID, e.VPN, e.Pdom, wr.PTE.Pdom)})
			case e.Writable && !wr.PTE.Writable:
				out = append(out, Violation{Core: coreID, Desc: fmt.Sprintf(
					"entry (asid %d, vpn %#x) writable, PTE is read-only — write-protect leak",
					e.ASID, e.VPN)})
			}
		})
	}
	return out
}
