package bench

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"vdom/internal/chaos"
)

// chaosSoakOps returns the soak length for the chaos report.
func (o Options) chaosSoakOps() int {
	if o.Quick {
		return 2000
	}
	return 10000
}

// chaosShards is the fixed number of independent soak shards the chaos
// experiment runs. It is a property of the experiment, not of the worker
// pool: shard seeds and lengths are derived from (seed, shard index)
// alone, so the aggregated report is byte-identical for every -parallel
// value.
const chaosShards = 8

// Chaos runs the deterministic fault-injection soak and reports the
// injected faults, the recovery paths that absorbed them, and the
// cross-layer audit verdict. The run replays exactly from its seed.
func Chaos(w io.Writer, o Options) error {
	return ChaosSeed(w, o, 42)
}

// ChaosSeed is Chaos with a caller-chosen seed, for replaying a specific
// fault sequence. The soak is split into chaosShards independent shards,
// each a fully isolated machine soaked under its own derived seed; shard
// results are aggregated in shard order.
//
// With Options.TraceDump set, every shard records its domain-op stream
// and any failing shard dumps a minimal replayable trace there; with
// Options.SoakReport set, a machine-readable JSON report of all shards
// is written too. The returned error covers artifact writing only — the
// soak verdict is in the rendered output (and the report).
func ChaosSeed(w io.Writer, o Options, seed uint64) error {
	kern := o.Kernel
	if kern == "" {
		kern = "vdom"
	}
	if kern != "vdom" && kern != "dpti" {
		return fmt.Errorf("chaos: no soak driver for kernel %q (have vdom, dpti)", kern)
	}
	cells := o.mapGrid("chaos:"+kern, seed)
	wires := make([]chaosWire, len(cells))
	for i, c := range cells {
		if c.fail != "" {
			return errors.New(c.fail)
		}
		wi, err := decodeChaosWire(c.aux)
		if err != nil {
			return fmt.Errorf("chaos shard %d: %w", i, err)
		}
		wires[i] = wi
	}

	// Dump failing shards' minimal reproducer traces before aggregating,
	// so each shard's TracePath lands in the report. The wire carries the
	// fail trace pre-encoded, so a shard soaked in a fleet worker dumps
	// the identical bytes a local shard would.
	tracePaths := make([]string, len(wires))
	if o.TraceDump != "" {
		if err := os.MkdirAll(o.TraceDump, 0o755); err != nil {
			return err
		}
		for i, wi := range wires {
			if len(wi.FailTrace) == 0 {
				continue
			}
			stem := "chaos-soak-shard%d.trace"
			if kern != "vdom" {
				stem = "chaos-soak-" + kern + "-shard%d.trace"
			}
			path := filepath.Join(o.TraceDump, fmt.Sprintf(stem, i))
			if err := os.WriteFile(path, wi.FailTrace, 0o644); err != nil {
				return err
			}
			tracePaths[i] = path
		}
	}

	// Aggregate in shard order: sums are order-insensitive, but the
	// violation/unrecovered listings below keep shard order for stable
	// replayable output.
	var agg chaosAgg
	for i, wi := range wires {
		agg.merge(wi)
		o.collect(cells[i])
	}

	title := fmt.Sprintf("Chaos soak: %d ops over %d shards, seed %d (replayable), all fault classes enabled",
		agg.Ops, chaosShards, seed)
	if kern != "vdom" {
		title = fmt.Sprintf("Chaos soak (%s kernel): %d ops over %d shards, seed %d (replayable), machine/kernel fault classes enabled",
			kern, agg.Ops, chaosShards, seed)
	}
	t := &Table{
		Title:   title,
		Columns: []string{"event", "count"},
	}
	for _, k := range sortedKeys(agg.Injected) {
		t.Row(k, fmt.Sprintf("%d", agg.Injected[k]))
	}
	for _, k := range sortedKeys(agg.Recovered) {
		t.Row(k, fmt.Sprintf("%d", agg.Recovered[k]))
	}
	t.Row("asid generation rollovers", fmt.Sprintf("%d", agg.ASIDRollovers))
	t.Row("audit passes", fmt.Sprintf("%d", agg.Audits))
	t.Row("audit violations", fmt.Sprintf("%d", len(agg.Violations)))
	t.Row("unrecovered faults", fmt.Sprintf("%d", len(agg.Unrecovered)))
	t.Row("total cycles", fmt.Sprintf("%d", agg.Cycles))
	o.Render(w, t)

	if len(agg.Violations) == 0 && len(agg.Unrecovered) == 0 {
		fmt.Fprintf(w, "\nverdict: COHERENT — every injected fault was absorbed by a degradation path\n")
	} else {
		fmt.Fprintf(w, "\nverdict: INCOHERENT\n")
		for _, v := range agg.Violations {
			fmt.Fprintf(w, "  violation: %s\n", v)
		}
		for _, u := range agg.Unrecovered {
			fmt.Fprintf(w, "  unrecovered: %s\n", u)
		}
	}

	if o.SoakReport != "" {
		srs := make([]chaos.ShardReport, len(wires))
		for i, wi := range wires {
			srs[i] = chaos.ShardReport{
				Shard:       i,
				Seed:        seed + uint64(i),
				Ops:         wi.Ops,
				Cycles:      wi.Cycles,
				Injected:    wi.Injected,
				Recovered:   wi.Recovered,
				Violations:  wi.Violations,
				Unrecovered: wi.Unrecovered,
				TraceEvents: wi.TraceEvents,
				TracePath:   tracePaths[i],
			}
		}
		f, err := os.Create(o.SoakReport)
		if err != nil {
			return err
		}
		if err := chaos.NewReport(seed, srs).WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// chaosAgg aggregates shard wires in shard order: sums are
// order-insensitive, listings keep shard order. It mirrors
// chaos.SoakResult.Merge over the wire representation, so the fleet and
// in-process paths aggregate identically.
type chaosAgg struct {
	Ops           int
	Cycles        uint64
	Injected      map[string]uint64
	Recovered     map[string]uint64
	Violations    []string
	Unrecovered   []string
	Audits        int
	ASIDRollovers uint64
}

func (a *chaosAgg) merge(wi chaosWire) {
	a.Ops += wi.Ops
	a.Cycles += wi.Cycles
	a.Audits += wi.Audits
	a.ASIDRollovers += wi.ASIDRollovers
	if a.Injected == nil {
		a.Injected = map[string]uint64{}
	}
	for k, v := range wi.Injected {
		a.Injected[k] += v
	}
	if a.Recovered == nil {
		a.Recovered = map[string]uint64{}
	}
	for k, v := range wi.Recovered {
		a.Recovered[k] += v
	}
	a.Violations = append(a.Violations, wi.Violations...)
	a.Unrecovered = append(a.Unrecovered, wi.Unrecovered...)
}

// sortedKeys returns the map's keys in lexical order for stable output.
func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
