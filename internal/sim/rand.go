package sim

// Rand is a small deterministic pseudo-random generator (xoshiro256**).
// Workloads use it instead of math/rand so that results are reproducible
// across Go releases and platforms.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from a single 64-bit seed via
// splitmix64, as recommended by the xoshiro authors.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// State returns the generator's internal 256-bit state, for
// checkpointing. Restoring it with SetState resumes the exact stream.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with one previously
// captured by State.
func (r *Rand) SetState(s [4]uint64) { r.s = s }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
