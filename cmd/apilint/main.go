// Command apilint guards the public API surface: it extracts the exported
// declarations of the root vdom package (via internal/apisurface) and
// diffs them against the committed golden file. An accidental API break —
// a removed identifier, a changed signature, a renamed exported field —
// makes it exit non-zero, so CI catches the break before users do.
//
// Usage:
//
//	go run ./cmd/apilint          # verify against testdata/api/vdom.golden
//	go run ./cmd/apilint -write   # regenerate the golden after an intended change
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vdom/internal/apisurface"
)

func main() {
	dir := flag.String("dir", ".", "package directory to extract the API surface from")
	golden := flag.String("golden", "testdata/api/vdom.golden", "golden file recording the blessed API surface")
	write := flag.Bool("write", false, "rewrite the golden file instead of verifying (for intended API changes)")
	flag.Parse()

	entries, err := apisurface.Surface(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apilint:", err)
		os.Exit(1)
	}
	got := apisurface.Render(entries)

	if *write {
		if err := os.WriteFile(*golden, []byte(got), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apilint:", err)
			os.Exit(1)
		}
		fmt.Printf("apilint: wrote %s (%d exported declarations)\n", *golden, len(entries))
		return
	}

	want, err := os.ReadFile(*golden)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apilint: %v (run `go run ./cmd/apilint -write` to create it)\n", err)
		os.Exit(1)
	}
	if got == string(want) {
		fmt.Printf("apilint: ok (%d exported declarations)\n", len(entries))
		return
	}

	fmt.Fprintln(os.Stderr, "apilint: exported API surface differs from", *golden)
	diff(strings.Split(string(want), "\n\n"), strings.Split(got, "\n\n"))
	fmt.Fprintln(os.Stderr, "\nif the change is intentional, regenerate with: go run ./cmd/apilint -write")
	os.Exit(1)
}

// diff prints declarations present on only one side. Entries are sorted,
// so a set difference reads as a usable change summary.
func diff(want, got []string) {
	wantSet := map[string]bool{}
	for _, e := range want {
		wantSet[e] = true
	}
	gotSet := map[string]bool{}
	for _, e := range got {
		gotSet[e] = true
	}
	for _, e := range want {
		if !gotSet[e] {
			fmt.Fprintf(os.Stderr, "  - %s\n", firstLine(e))
		}
	}
	for _, e := range got {
		if !wantSet[e] {
			fmt.Fprintf(os.Stderr, "  + %s\n", firstLine(e))
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}
