package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"vdom/internal/chaos"
)

// BenchmarkRollingCheckpoint measures the supervised checkpoint path —
// snapshot capture + encode + atomic ring append with pruning — at
// steady state, across ring capacities.
func BenchmarkRollingCheckpoint(b *testing.B) {
	for _, ringCap := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("ring%d", ringCap), func(b *testing.B) {
			cfg := Config{
				Shards:      1,
				Seed:        1,
				Soak:        soakTemplate(),
				OpsPerShard: 1 << 20,
				Ring:        ringCap,
				RingDir:     b.TempDir(),
			}.normalized()
			s, err := newSupervisor(cfg, cfg.RingDir, 0)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				s.soak.Step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.checkpoint(300)
			}
			b.StopTimer()
			if s.h.CheckpointWriteFails != 0 {
				b.Fatalf("%d checkpoint writes failed", s.h.CheckpointWriteFails)
			}
		})
	}
}

// BenchmarkSupervisedRecovery measures the full supervised recovery —
// ring walk, decode, restore, injector re-arm, tail replay, re-audit,
// watchdog re-arm — from a mid-run crash.
func BenchmarkSupervisedRecovery(b *testing.B) {
	cfg := Config{
		Shards:      1,
		Seed:        2,
		Soak:        soakTemplate(),
		OpsPerShard: 1 << 20,
		Ring:        4,
		RingDir:     b.TempDir(),
		BackoffBase: time.Nanosecond,
	}.normalized()
	s, err := newSupervisor(cfg, cfg.RingDir, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		s.soak.Step()
	}
	s.checkpoint(300)
	for i := 0; i < 100; i++ {
		s.soak.Step()
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.soak.Crash(chaos.CrashKernelPanic)
		s.recover(ctx)
	}
	b.StopTimer()
	if s.state() != Running || s.h.RecoveryFailures != 0 {
		b.Fatalf("recovery unhealthy: state %v, %d failures", s.state(), s.h.RecoveryFailures)
	}
	if b.Elapsed() > 0 && b.N > 0 {
		b.ReportMetric(float64(s.h.TailEvents)/float64(b.N), "tail-events/op")
	}
}
