// Package backend is the kernel-backend registry: the one place where a
// domain-virtualization kernel (the VDom core, the libmpk baseline, the
// EPK VM model, the DPTI per-domain-page-table baseline) plugs into
// every comparison surface of the repository. A backend registers once,
// under its trace kernel-kind name, and through the Backend interface
// reaches booting (replay.Boot), trace recording (the unified tap),
// end-state verification, checkpoint capture/restore (its vdom-snap/v1
// section), metrics attribution, and the generic workload adapter
// (DomainOps) that the conformance suite, the kernel×arch matrix
// experiment, and the public vdom.WithKernel routing drive.
//
// Before the registry, five dispatch sites (replay boot, recorder
// attach, end-state, snapshot capture, snapshot restore) each hand-wired
// the three kernels; adding a fourth meant touching all five. Now a
// kernel is one Register call.
package backend

import (
	"errors"
	"fmt"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/dpti"
	"vdom/internal/epk"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/libmpk"
	"vdom/internal/metrics"
	"vdom/internal/pagetable"
	"vdom/internal/tap"
)

// ErrDomainCapacity reports a DomainOps.Alloc against a backend whose
// fixed domain capacity (EPK's EPT groups) is exhausted.
var ErrDomainCapacity = errors.New("backend: domain capacity exhausted")

// Spec is the configuration a backend boots from — the replay.Header's
// knobs, decoupled from the trace format so non-replay callers (the
// public API, the conformance suite) can boot without forging headers.
type Spec struct {
	// Arch selects the cost table.
	Arch cycles.Arch
	// Cores is the machine size (<= 0 with a standalone backend: no
	// machine at all).
	Cores int
	// TLBCap is hw.Config.TLBCapacity (0 = unlimited).
	TLBCap int
	// NoASID disables ASID tagging (hw.Config.NoASID).
	NoASID bool
	// VDomKernel enables the VDom kernel patch (kernel.Config).
	VDomKernel bool
	// SecureGate, NoPMDOpt, StrictLRU, FlushThreshold, and Nas are
	// core.Policy knobs; other backends ignore them.
	SecureGate     bool
	NoPMDOpt       bool
	StrictLRU      bool
	FlushThreshold uint64
	Nas            int
	// Domains is EPK's fixed domain capacity.
	Domains int
	// Huge2M selects libmpk's 2 MiB page mode.
	Huge2M bool
}

// Instance is one booted system: the shared substrate (machine, kernel,
// process) plus the domain layer of its backend. Layers the backend does
// not use stay nil. replay.System is an alias of this type.
type Instance struct {
	Machine *hw.Machine
	Kernel  *kernel.Kernel
	Proc    *kernel.Process
	Manager *core.Manager
	Libmpk  *libmpk.Manager
	EPK     *epk.System
	DPTI    *dpti.Manager
}

// DomainOps is the kernel-neutral workload adapter: allocate domains,
// assign memory to them, and switch a thread's active domain, with each
// backend translating to its own primitives (VDR writes, pkey register
// writes, VMFUNC switches, pgd switches). The conformance suite and the
// kernel×arch matrix experiment drive every backend through it.
type DomainOps interface {
	// Alloc allocates a domain and returns its id.
	Alloc(t *kernel.Task) (id uint64, cost cycles.Cost, err error)
	// Free releases a domain.
	Free(t *kernel.Task, id uint64) (cycles.Cost, error)
	// Protect assigns [addr, addr+length) to the domain.
	Protect(t *kernel.Task, addr pagetable.VAddr, length uint64, id uint64) (cycles.Cost, error)
	// PrepareThread performs per-thread setup (VDom's VDR allocation);
	// n bounds how many domains the thread will touch.
	PrepareThread(t *kernel.Task, n int) (cycles.Cost, error)
	// Activate makes the domain accessible to (or current for) the thread.
	Activate(t *kernel.Task, id uint64) (cycles.Cost, error)
	// Deactivate revokes the thread's access to the domain.
	Deactivate(t *kernel.Task, id uint64) (cycles.Cost, error)
}

// Backend is one kernel's registration: how to boot it, tap it, snapshot
// it, account it, and drive it generically. Methods take the Instance so
// a Backend itself stays stateless and shareable.
type Backend interface {
	// Name is the trace kernel-kind string (replay.Kernel* constants).
	Name() string
	// Standalone reports whether this spec boots without the
	// machine/kernel substrate (EPK's pure cost model with Cores <= 0).
	Standalone(spec Spec) bool
	// Attach builds the backend's domain layer onto the instance; the
	// substrate is already booted unless Standalone.
	Attach(inst *Instance, spec Spec) error
	// AttachTap points the domain layer's trace tap at t.
	AttachTap(inst *Instance, t tap.Tap)
	// SetMetrics installs the cycle-attribution registry on the domain
	// layer (nil detaches).
	SetMetrics(inst *Instance, r *metrics.Registry)
	// EmitEnd emits the backend's end-state counters (trace End section).
	EmitEnd(inst *Instance, emit func(name string, v uint64))
	// Present reports whether the instance carries this backend's layer.
	Present(inst *Instance) bool
	// Section is the backend's vdom-snap/v1 section name.
	Section() string
	// ProcScoped reports whether the section lives inside the
	// process-state block of a snapshot (false for EPK, which can exist
	// without a process).
	ProcScoped() bool
	// Capture returns the gob-encodable checkpoint image of the domain
	// layer. tableID maps live page tables to stable ids (nil for
	// backends that keep no table references).
	Capture(inst *Instance, tableID func(*pagetable.Table) int) any
	// Restore decodes the checkpoint image via decode and loads it into
	// the freshly attached domain layer. table and task resolve stable
	// table ids and trace thread ids (nil for backends needing neither).
	Restore(inst *Instance, decode func(any) error, table func(id int) *pagetable.Table, task func(tid int) *kernel.Task) error
	// Ops returns the kernel-neutral workload adapter over the instance.
	Ops(inst *Instance) DomainOps
}

// registry holds backends in registration order (which is also snapshot
// section order, so it must stay stable: vdom, libmpk, epk, dpti).
var registry []Backend

// Register adds a backend under its Name. Duplicate names panic: the
// name is the trace kernel kind, and two owners would corrupt replay.
func Register(b Backend) {
	for _, have := range registry {
		if have.Name() == b.Name() {
			panic(fmt.Sprintf("backend: duplicate registration of %q", b.Name()))
		}
	}
	registry = append(registry, b)
}

// Get returns the backend registered under name.
func Get(name string) (Backend, bool) {
	for _, b := range registry {
		if b.Name() == name {
			return b, true
		}
	}
	return nil, false
}

// Names lists the registered backend names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Name()
	}
	return out
}

// All returns the registered backends in registration order.
func All() []Backend {
	return append([]Backend(nil), registry...)
}

// Of returns the backend whose domain layer the instance carries, or nil
// for a bare substrate.
func Of(inst *Instance) Backend {
	for _, b := range registry {
		if b.Present(inst) {
			return b
		}
	}
	return nil
}

// BootSubstrate boots the shared machine/kernel/process substrate the
// non-standalone backends attach to.
func BootSubstrate(inst *Instance, spec Spec) {
	inst.Machine = hw.NewMachine(hw.Config{
		Arch:        spec.Arch,
		NumCores:    spec.Cores,
		TLBCapacity: spec.TLBCap,
		NoASID:      spec.NoASID,
	})
	inst.Kernel = kernel.New(kernel.Config{Machine: inst.Machine, VDomEnabled: spec.VDomKernel})
	inst.Proc = inst.Kernel.NewProcess()
}

func init() {
	// Registration order is snapshot section order; keep it.
	Register(vdomBackend{})
	Register(libmpkBackend{})
	Register(epkBackend{})
	Register(dptiBackend{})
}
