// Package snapshot implements vdom-snap/v1, the versioned full-System
// checkpoint/restore subsystem of the crash-tolerance layer (see
// RECOVERY.md).
//
// A snapshot serializes every layer of a running System — the memory
// manager's VMA tree and page tables (per-PTE domain tags, PMD-disable
// marks, and mutation generations included), the kernel's task, ASID-
// generation, and per-core residency state, the hardware cores' ASID-
// tagged TLBs, permission registers, and walk caches, and the domain
// layer of the trace's kernel kind (VDom manager, libmpk key cache, or
// EPK groups) — into a self-describing container:
//
//	"VDSN" | uvarint version | uvarint #sections |
//	    { uvarint len(name) | name | uvarint len(payload) |
//	      crc32(payload) | payload }*
//
// The first section is always "meta": the replay.Header of the recorded
// run (carrying the config digest), the virtual clock, and the trace
// event index the checkpoint corresponds to. Every payload is CRC-32
// (IEEE) protected and gob-encoded; Decode returns typed errors
// (ErrBadMagic, ErrBadVersion, ErrTruncated, ErrBadChecksum,
// ErrBadRecord) and never panics on hostile input.
//
// Restore composes with internal/replay: it boots a fresh System from
// the meta header and loads each section into its layer, after which
// replay.RunTail re-executes the trace events recorded since the
// checkpoint to reach the crash point.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"

	"vdom/internal/backend"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/mm"
	"vdom/internal/pagetable"
	"vdom/internal/replay"
)

// FormatVersion is the on-disk snapshot format version.
const FormatVersion = 1

// FormatName identifies the format in docs and reports.
const FormatName = "vdom-snap/v1"

// Typed decode errors, all matchable with errors.Is.
var (
	// ErrBadMagic means the input does not start with the VDSN magic.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrBadVersion means the format version is unsupported.
	ErrBadVersion = errors.New("snapshot: unsupported version")
	// ErrTruncated means the input ended before the structure did.
	ErrTruncated = errors.New("snapshot: truncated input")
	// ErrBadChecksum means a section payload failed CRC verification.
	ErrBadChecksum = errors.New("snapshot: section checksum mismatch")
	// ErrBadRecord means a structurally invalid record (bad counts,
	// oversized lengths, undecodable payloads, missing sections).
	ErrBadRecord = errors.New("snapshot: bad record")
)

// Sanity caps keeping hostile inputs from allocating unboundedly.
const (
	maxSections    = 1024
	maxNameLen     = 255
	maxPayloadSize = 1 << 26
)

var magic = [4]byte{'V', 'D', 'S', 'N'}

// Meta identifies what a snapshot is a checkpoint of.
type Meta struct {
	// Header is the recorded run's trace header; its ConfigDigest ties
	// the snapshot to the run configuration, and Restore boots the
	// System skeleton from it.
	Header replay.Header
	// Clock is the virtual cycle clock at the checkpoint.
	Clock uint64
	// EventIndex is the number of trace events recorded before the
	// checkpoint: tail recovery replays Events[EventIndex:].
	EventIndex int
}

// Section is one named, CRC-protected payload.
type Section struct {
	Name string
	Data []byte
	// Offset is the section record's byte offset in the decoded
	// container (0 for captured, not-yet-encoded sections). Decode and
	// Restore errors carry it so a bad section can be located in the
	// file without re-parsing.
	Offset int64
}

// State is a decoded (or captured, not-yet-encoded) snapshot.
type State struct {
	Meta Meta
	// Sections holds every non-meta section in container order.
	Sections []Section
}

// AddSection appends a section (e.g. the chaos injector's PRNG state,
// attached by the crash-soak harness).
func (s *State) AddSection(name string, data []byte) {
	s.Sections = append(s.Sections, Section{Name: name, Data: data})
}

// Section returns the named section's payload.
func (s *State) Section(name string) ([]byte, bool) {
	sec, ok := s.lookup(name)
	return sec.Data, ok
}

// lookup returns the full named section, offset included.
func (s *State) lookup(name string) (Section, bool) {
	for _, sec := range s.Sections {
		if sec.Name == name {
			return sec, true
		}
	}
	return Section{}, false
}

// Section names of the substrate images; each domain layer's section is
// named by its backend (Backend.Section — "core/manager", "libmpk",
// "epk", "dpti").
const (
	secMeta   = "meta"
	secMM     = "mm/as"
	secKernel = "kernel"
	secHW     = "hw/machine"
)

// machineSnap is the hardware section: the frame allocator watermark
// plus every core's image.
type machineSnap struct {
	FrameWatermark pagetable.Frame
	Cores          []hw.CoreSnap
}

// gobEncode serializes v; snapshot payloads are internal, so encoding
// failures are programming errors.
func gobEncode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("snapshot: gob encode: %v", err))
	}
	return buf.Bytes()
}

// gobDecode decodes a section payload, typing any failure — including a
// truncated-but-CRC-consistent payload — as ErrBadRecord with the
// section's name and container offset.
func gobDecode(sec Section, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(sec.Data)).Decode(v); err != nil {
		return fmt.Errorf("%w: section %q at offset %d: %v", ErrBadRecord, sec.Name, sec.Offset, err)
	}
	return nil
}

// Capture builds a snapshot of the live System: hdr describes the run
// (as recorded by the trace recorder), clock is the current virtual
// clock, and eventIndex is the number of trace events recorded so far.
func Capture(sys *replay.System, hdr replay.Header, clock uint64, eventIndex int) (*State, error) {
	if sys == nil {
		return nil, fmt.Errorf("%w: nil system", ErrBadRecord)
	}
	st := &State{Meta: Meta{Header: hdr, Clock: clock, EventIndex: eventIndex}}

	if sys.Proc != nil {
		as := sys.Proc.AS()
		st.AddSection(secMM, gobEncode(as.Snap()))

		// Stable table-id mapping; stale pointers (a reaped VDS's table
		// lingering in a core's loaded-table or walk-memo slot) map to
		// "none": they can never match a live table again, so the
		// restored miss behaviour is identical.
		ids := map[*pagetable.Table]int{as.Shadow(): 0}
		for j, t := range as.Tables() {
			ids[t] = j + 1
		}
		tableID := func(t *pagetable.Table) int {
			if t == nil {
				return -1
			}
			if id, ok := ids[t]; ok {
				return id
			}
			return -1
		}
		st.AddSection(secKernel, gobEncode(sys.Kernel.Snap(sys.Proc, tableID)))

		ms := machineSnap{FrameWatermark: sys.Machine.FrameWatermark()}
		for i := 0; i < sys.Machine.NumCores(); i++ {
			cs := sys.Machine.Core(i).Snap(tableID)
			if cs.Walk.TableID == -1 {
				cs.Walk.Valid = false
			}
			ms.Cores = append(ms.Cores, cs)
		}
		st.AddSection(secHW, gobEncode(ms))

		// Process-scoped domain layers, in backend registration order —
		// which is also the container's stable section order.
		for _, b := range backend.All() {
			if b.ProcScoped() && b.Present(sys) {
				st.AddSection(b.Section(), gobEncode(b.Capture(sys, tableID)))
			}
		}
	}
	for _, b := range backend.All() {
		if !b.ProcScoped() && b.Present(sys) {
			st.AddSection(b.Section(), gobEncode(b.Capture(sys, nil)))
		}
	}
	return st, nil
}

// Restore boots a fresh System from the snapshot's header and loads
// every captured layer into it. It returns the System and its live
// tasks keyed by trace thread id, ready for replay.RunTail.
func Restore(st *State) (*replay.System, map[uint64]*kernel.Task, error) {
	sys, err := replay.Boot(st.Meta.Header)
	if err != nil {
		return nil, nil, err
	}
	tasks := map[uint64]*kernel.Task{}

	if sys.Proc != nil {
		sec, ok := st.lookup(secMM)
		if !ok {
			return nil, nil, fmt.Errorf("%w: missing section %q", ErrBadRecord, secMM)
		}
		var asSnap mm.ASSnap
		if err := gobDecode(sec, &asSnap); err != nil {
			return nil, nil, err
		}
		space := sys.Proc.AS()
		space.LoadSnap(asSnap)
		numTables := len(asSnap.Tables)

		sec, ok = st.lookup(secKernel)
		if !ok {
			return nil, nil, fmt.Errorf("%w: missing section %q", ErrBadRecord, secKernel)
		}
		var ks kernel.Snap
		if err := gobDecode(sec, &ks); err != nil {
			return nil, nil, err
		}
		if err := checkTableIDs(sec, ks, numTables); err != nil {
			return nil, nil, err
		}
		byTID := sys.Kernel.LoadSnap(ks, sys.Proc, space.TableByID)
		for tid, tk := range byTID {
			tasks[uint64(tid)] = tk
		}
		taskFn := func(tid int) *kernel.Task {
			if tid == 0 {
				return nil
			}
			return byTID[tid]
		}

		sec, ok = st.lookup(secHW)
		if !ok {
			return nil, nil, fmt.Errorf("%w: missing section %q", ErrBadRecord, secHW)
		}
		var ms machineSnap
		if err := gobDecode(sec, &ms); err != nil {
			return nil, nil, err
		}
		if len(ms.Cores) != sys.Machine.NumCores() {
			return nil, nil, fmt.Errorf("%w: section %q at offset %d: snapshot has %d cores, header boots %d",
				ErrBadRecord, sec.Name, sec.Offset, len(ms.Cores), sys.Machine.NumCores())
		}
		for i, cs := range ms.Cores {
			if cs.TableID < -1 || cs.TableID > numTables ||
				cs.Walk.TableID < -1 || cs.Walk.TableID > numTables {
				return nil, nil, fmt.Errorf("%w: section %q at offset %d: core %d references table out of range",
					ErrBadRecord, sec.Name, sec.Offset, i)
			}
			sys.Machine.Core(i).LoadSnap(cs, space.TableByID)
		}
		sys.Machine.SetFrameWatermark(ms.FrameWatermark)

		for _, b := range backend.All() {
			if !b.ProcScoped() || !b.Present(sys) {
				continue
			}
			if err := restoreSection(st, b, sys, space.TableByID, taskFn); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, b := range backend.All() {
		if b.ProcScoped() || !b.Present(sys) {
			continue
		}
		if err := restoreSection(st, b, sys, nil, nil); err != nil {
			return nil, nil, err
		}
	}
	return sys, tasks, nil
}

// restoreSection locates a backend's section and hands it to the
// backend's decoder, preserving the typed missing-section and
// bad-payload errors.
func restoreSection(st *State, b backend.Backend, sys *replay.System,
	table func(int) *pagetable.Table, task func(int) *kernel.Task) error {
	sec, ok := st.lookup(b.Section())
	if !ok {
		return fmt.Errorf("%w: missing section %q", ErrBadRecord, b.Section())
	}
	return b.Restore(sys, func(v any) error { return gobDecode(sec, v) }, table, task)
}

// checkTableIDs validates the kernel section's table references against
// the restored address space, turning out-of-range ids (a corrupted but
// checksum-valid snapshot) into typed errors — naming the section and
// its container offset — instead of panics.
func checkTableIDs(sec Section, ks kernel.Snap, numTables int) error {
	for _, ts := range ks.Tasks {
		if ts.TableID < -1 || ts.TableID > numTables {
			return fmt.Errorf("%w: section %q at offset %d: task %d references table %d of %d",
				ErrBadRecord, sec.Name, sec.Offset, ts.TID, ts.TableID, numTables)
		}
	}
	return nil
}

// Encode serializes the snapshot into the vdom-snap/v1 container.
func Encode(st *State) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	writeUvarint(&buf, FormatVersion)
	writeUvarint(&buf, uint64(1+len(st.Sections)))
	writeSection(&buf, Section{Name: secMeta, Data: gobEncode(st.Meta)})
	for _, sec := range st.Sections {
		writeSection(&buf, sec)
	}
	return buf.Bytes()
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func writeSection(buf *bytes.Buffer, sec Section) {
	if len(sec.Name) > maxNameLen {
		panic(fmt.Sprintf("snapshot: section name %q too long", sec.Name))
	}
	if len(sec.Data) > maxPayloadSize {
		panic(fmt.Sprintf("snapshot: section %q payload %d exceeds cap", sec.Name, len(sec.Data)))
	}
	writeUvarint(buf, uint64(len(sec.Name)))
	buf.WriteString(sec.Name)
	writeUvarint(buf, uint64(len(sec.Data)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(sec.Data))
	buf.Write(crc[:])
	buf.Write(sec.Data)
}

// Decode parses a vdom-snap/v1 container. It verifies the magic,
// version, structure, and every section's CRC, returning typed errors
// for each failure mode; it never panics on hostile input.
func Decode(b []byte) (*State, error) {
	r := bytes.NewReader(b)
	var m [4]byte
	if _, err := r.Read(m[:]); err != nil || m != magic {
		return nil, ErrBadMagic
	}
	version, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, ErrTruncated
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: %d (supported: %d)", ErrBadVersion, version, FormatVersion)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, ErrTruncated
	}
	if count == 0 || count > maxSections {
		return nil, fmt.Errorf("%w: %d sections", ErrBadRecord, count)
	}
	st := &State{}
	sawMeta := false
	for i := uint64(0); i < count; i++ {
		off := int64(len(b) - r.Len())
		sec, err := readSection(r, off)
		if err != nil {
			return nil, err
		}
		if sec.Name == secMeta {
			if sawMeta {
				return nil, fmt.Errorf("%w: duplicate meta section at offset %d", ErrBadRecord, off)
			}
			sawMeta = true
			if err := gobDecode(sec, &st.Meta); err != nil {
				return nil, err
			}
			continue
		}
		st.Sections = append(st.Sections, sec)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, r.Len())
	}
	if !sawMeta {
		return nil, fmt.Errorf("%w: missing meta section", ErrBadRecord)
	}
	return st, nil
}

// readSection reads one section record; off is the record's offset in
// the container, carried into the section and its error messages.
func readSection(r *bytes.Reader, off int64) (Section, error) {
	nameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return Section{}, ErrTruncated
	}
	if nameLen == 0 || nameLen > maxNameLen {
		return Section{}, fmt.Errorf("%w: section name length %d at offset %d", ErrBadRecord, nameLen, off)
	}
	name := make([]byte, nameLen)
	if _, err := readFull(r, name); err != nil {
		return Section{}, ErrTruncated
	}
	payLen, err := binary.ReadUvarint(r)
	if err != nil {
		return Section{}, ErrTruncated
	}
	if payLen > maxPayloadSize {
		return Section{}, fmt.Errorf("%w: section %q at offset %d: payload length %d", ErrBadRecord, name, off, payLen)
	}
	if uint64(r.Len()) < payLen+4 {
		return Section{}, ErrTruncated
	}
	var crc [4]byte
	if _, err := readFull(r, crc[:]); err != nil {
		return Section{}, ErrTruncated
	}
	data := make([]byte, payLen)
	if _, err := readFull(r, data); err != nil {
		return Section{}, ErrTruncated
	}
	if crc32.ChecksumIEEE(data) != binary.LittleEndian.Uint32(crc[:]) {
		return Section{}, fmt.Errorf("%w: section %q at offset %d", ErrBadChecksum, string(name), off)
	}
	return Section{Name: string(name), Data: data, Offset: off}, nil
}

func readFull(r *bytes.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := r.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
