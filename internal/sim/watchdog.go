package sim

// Watchdog detects stalled progress in the simulated system. A harness
// feeds it periodic clock observations; when the clock fails to advance
// for `threshold` consecutive observations the watchdog declares a stall
// and invokes its onStall callback exactly once (until Reset).
//
// The watchdog is the recovery trigger of the crash-tolerance subsystem
// (see RECOVERY.md): a wedged core or a kernel panic stops the virtual
// clock, the watchdog fires, and the onStall callback restores the
// latest checkpoint and replays the trace tail.
type Watchdog struct {
	threshold int
	onStall   func(clock uint64)
	last      uint64
	seen      bool
	stuck     int
	fired     bool
}

// NewWatchdog returns a watchdog that fires after `threshold` consecutive
// observations without clock progress. onStall may be nil, in which case
// the watchdog only records that it fired. threshold must be positive.
func NewWatchdog(threshold int, onStall func(clock uint64)) *Watchdog {
	if threshold <= 0 {
		panic("sim: watchdog threshold must be positive")
	}
	return &Watchdog{threshold: threshold, onStall: onStall}
}

// Observe feeds the watchdog one clock sample. It returns true — and
// invokes the onStall callback — when this observation pushes the
// consecutive no-progress count to the threshold. Once fired, further
// observations are no-ops until Reset.
func (w *Watchdog) Observe(clock uint64) bool {
	if w.fired {
		return false
	}
	if !w.seen || clock > w.last {
		w.seen = true
		w.last = clock
		w.stuck = 0
		return false
	}
	w.stuck++
	if w.stuck < w.threshold {
		return false
	}
	w.fired = true
	if w.onStall != nil {
		w.onStall(clock)
	}
	return true
}

// Fired reports whether the watchdog has declared a stall since the last
// Reset.
func (w *Watchdog) Fired() bool { return w.fired }

// Reset re-arms the watchdog after a recovery, clearing the fired state
// and the progress history.
func (w *Watchdog) Reset() {
	w.seen = false
	w.stuck = 0
	w.fired = false
}
