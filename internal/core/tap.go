package core

import (
	"vdom/internal/cycles"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
)

// APIOp identifies one public Manager API call for trace recording.
type APIOp int

// The tapped API operations, one per public syscall-shaped entry point.
const (
	APIAllocVdom APIOp = iota
	APIFreeVdom
	APIMprotect
	APIVdrAlloc
	APIVdrFree
	APIRdVdr
	APIWrVdr
	APINewVDS
)

// APICall describes one completed Manager API call: the identifying
// arguments, the returned cost, and the outcome. Fields an op does not
// use stay zero.
type APICall struct {
	// Op is the API entry point.
	Op APIOp
	// TID is the calling thread (0 for process-level ops).
	TID int
	// Vdom is the domain argument, or AllocVdom's returned id.
	Vdom VdomID
	// Addr and Len are Mprotect's range.
	Addr pagetable.VAddr
	Len  uint64
	// Nas is VdrAlloc's requested address-space count, as passed.
	Nas int
	// Freq is AllocVdom's frequently-accessed hint.
	Freq bool
	// Perm is WrVdr's argument or RdVdr's result.
	Perm VPerm
	// Cost is the cycles the call returned.
	Cost cycles.Cost
	// Err is the call's error, nil on success.
	Err error
}

// APITap observes completed Manager API calls for trace recording
// (internal/replay). Calls arrive in execution order; the simulation is
// cooperatively scheduled, so no locking is needed.
type APITap func(APICall)

// SetAPITap attaches a trace recorder to the Manager's public API. Pass
// nil (the default) to detach; when detached each call pays one nil
// check.
func (m *Manager) SetAPITap(tap APITap) { m.apiTap = tap }

// tapAPI forwards a completed call to the attached tap, if any.
func (m *Manager) tapAPI(c APICall) {
	if m.apiTap != nil {
		m.apiTap(c)
	}
}

// tapTID extracts the thread id, tolerating process-level (nil-task) ops.
func tapTID(t *kernel.Task) int {
	if t == nil {
		return 0
	}
	return t.TID()
}
