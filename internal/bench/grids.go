package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"vdom/internal/backend"
	"vdom/internal/chaos"
	"vdom/internal/cycles"
	"vdom/internal/fleet"
	"vdom/internal/metrics"
	"vdom/internal/par"
	"vdom/internal/replay"
	"vdom/internal/workload"
)

// The distributable grid catalog. Every experiment fan-out is a named
// grid: a deterministic function from (grid name, cell index, options)
// to one cell. The in-process pool and the multi-process fleet both
// execute cells through this catalog — the same closure either runs on
// a local goroutine or is rebuilt inside a worker subprocess from its
// CellSpec — so the two paths cannot diverge: byte-identity of the
// merged output is by construction, not by luck.
//
// Grid names optionally carry parameters after colons (e.g.
// "fig5:X86:65536" is Figure 5's X86/64KB table). Table 3 is absent by
// design: its fan-out lives inside internal/workload and stays
// in-process.

// rowSep joins multi-column row cells into one wire string; no rendered
// cell text contains it.
const rowSep = "\x1f"

// gridJobs is one grid instantiated against concrete options: its cell
// count and its index-to-cell function.
type gridJobs struct {
	n   int
	job func(i int) cell
}

// parseArch resolves an architecture name from a grid parameter.
func parseArch(s string) (cycles.Arch, error) {
	for _, a := range []cycles.Arch{cycles.X86, cycles.ARM, cycles.Power, cycles.RISCV} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("bench: unknown arch %q", s)
}

// gridFor instantiates the named grid. seed parameterizes seeded grids
// (chaos); the others ignore it.
func gridFor(name string, seed uint64, o Options) (gridJobs, error) {
	base, params := name, ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		base, params = name[:i], name[i+1:]
	}
	switch base {
	case "table4":
		return table4Grid(o), nil
	case "table5":
		return table5Grid(o), nil
	case "matrix":
		return matrixGrid(o), nil
	case "fig1":
		return fig1Grid(o), nil
	case "fig5":
		arch, size, err := parseArchSize(params)
		if err != nil {
			return gridJobs{}, err
		}
		return fig5Grid(o, arch, size), nil
	case "fig6":
		arch, err := parseArch(params)
		if err != nil {
			return gridJobs{}, err
		}
		return fig6Grid(o, arch), nil
	case "fig7":
		arch, err := parseArch(params)
		if err != nil {
			return gridJobs{}, err
		}
		return fig7Grid(o, arch), nil
	case "unixbench":
		return unixBenchGrid(o), nil
	case "chaos":
		if params != "vdom" && params != "dpti" {
			return gridJobs{}, fmt.Errorf("bench: no chaos soak driver for kernel %q", params)
		}
		return chaosGrid(o, params, seed), nil
	default:
		return gridJobs{}, fmt.Errorf("bench: unknown grid %q", name)
	}
}

func parseArchSize(params string) (cycles.Arch, uint64, error) {
	i := strings.IndexByte(params, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf("bench: fig5 grid wants arch:bytes, got %q", params)
	}
	arch, err := parseArch(params[:i])
	if err != nil {
		return 0, 0, err
	}
	size, err := strconv.ParseUint(params[i+1:], 10, 64)
	if err != nil || size == 0 {
		return 0, 0, fmt.Errorf("bench: bad fig5 size %q", params[i+1:])
	}
	return arch, size, nil
}

// mapGrid executes the named grid and returns its cells in index order.
// With a fleet attached (Options.FleetRun), cells are sharded across
// worker subprocesses and merged from their result frames; otherwise
// they fan out across the in-process pool exactly as before.
func (o Options) mapGrid(name string, seed uint64) []cell {
	g, err := gridFor(name, seed, o)
	if err != nil {
		// Grid names originate in this package; an unknown one is a
		// programming error, not an input error.
		panic(err)
	}
	if o.FleetRun != nil {
		return o.FleetRun.mapGrid(o, name, seed, g.n)
	}
	jobs := make([]func() cell, g.n)
	for i := range jobs {
		i := i
		jobs[i] = func() cell { return g.job(i) }
	}
	return par.Map(o.workers(), jobs)
}

// specOptions reconstructs the worker-side Options a cell's computation
// depends on from its wire spec: the run-wide bits travel in the spec's
// flags, and the observability sinks are stand-ins whose only role is
// to enable per-cell sink creation. base carries coordinator-side state
// (Ctx) that is legitimate to inherit locally.
func specOptions(base Options, spec fleet.CellSpec) Options {
	o := Options{
		Quick:  spec.Quick(),
		Kernel: spec.Kernel,
		Ctx:    base.Ctx,
	}
	if spec.Metrics() {
		o.Metrics = metrics.New()
	}
	if spec.Trace() {
		o.Trace = metrics.NewTrace()
	}
	if spec.Record() {
		o.TraceDump = "recorded"
	}
	return o
}

// specFlags projects the run-wide option bits into a cell spec's flags.
func specFlags(o Options) uint32 {
	var f uint32
	if o.Quick {
		f |= fleet.FlagQuick
	}
	if o.Metrics.Enabled() {
		f |= fleet.FlagMetrics
	}
	if o.Trace.Enabled() {
		f |= fleet.FlagTrace
	}
	if o.TraceDump != "" {
		f |= fleet.FlagRecord
	}
	return f
}

// Executor returns the fleet cell executor over this package's grid
// catalog: the function `vdom-bench worker` serves, and the one the
// coordinator falls back to in degraded mode. base supplies
// coordinator-local state (Ctx); everything else comes from the spec.
func Executor(base Options) fleet.Exec {
	return func(spec fleet.CellSpec) (fleet.CellResult, error) {
		o := specOptions(base, spec)
		g, err := gridFor(spec.Grid, spec.Seed, o)
		if err != nil {
			return fleet.CellResult{}, err
		}
		if spec.Index < 0 || spec.Index >= g.n {
			return fleet.CellResult{}, fmt.Errorf("bench: cell index %d out of range for grid %s (%d cells)", spec.Index, spec.Grid, g.n)
		}
		c := g.job(spec.Index)
		if c.fail != "" {
			return fleet.CellResult{}, fmt.Errorf("bench: %s", c.fail)
		}
		res := fleet.CellResult{Text: c.text, Total: c.total, Aux: c.aux}
		if c.reg != nil {
			var buf bytes.Buffer
			if err := c.reg.WriteJSON(&buf); err != nil {
				return fleet.CellResult{}, err
			}
			res.Metrics = buf.Bytes()
		}
		if c.tr != nil {
			var buf bytes.Buffer
			if err := c.tr.WriteJSON(&buf); err != nil {
				return fleet.CellResult{}, err
			}
			res.Trace = buf.Bytes()
		}
		return res, nil
	}
}

// FleetRun attaches a worker fleet to a bench run: configuration for
// fleet.Run plus the aggregated report across every grid the run
// distributes. One FleetRun serves a whole vdom-bench invocation; each
// distributable grid becomes one fleet.Run generation (spawn, shard,
// merge, drain).
type FleetRun struct {
	// Workers is the fleet width.
	Workers int
	// Spawn brings up one worker subprocess; nil degrades every grid to
	// the in-process pool (reported, not fatal).
	Spawn fleet.Spawn
	// Faults seeds the transport-fault injector (CI chaos smoke).
	Faults fleet.FaultConfig
	// CellTimeout, MaxAttempts: see fleet.Config.
	CellTimeout time.Duration
	MaxAttempts int
	// KillAfter arms the kill-one-worker-mid-cell chaos hook on the
	// first grid large enough to trigger it; it fires at most once per
	// FleetRun.
	KillAfter int
	// Logf receives coordinator progress lines (nil silences them).
	Logf func(format string, args ...any)

	mu     sync.Mutex
	report fleet.Report
	fired  bool
}

// Report returns the aggregated fleet report across all grids run so
// far.
func (fr *FleetRun) Report() *fleet.Report {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	rep := fr.report
	rep.Workers = fr.Workers
	rep.Quarantined = append([]fleet.QuarantinedCell(nil), fr.report.Quarantined...)
	return &rep
}

// mapGrid distributes one grid across the fleet and decodes the result
// frames back into cells.
func (fr *FleetRun) mapGrid(o Options, name string, seed uint64, n int) []cell {
	flags := specFlags(o)
	specs := make([]fleet.CellSpec, n)
	for i := range specs {
		specs[i] = fleet.CellSpec{
			Grid: name, Index: i, Seed: seed,
			Kernel: o.Kernel, Flags: flags,
		}
	}
	fr.mu.Lock()
	kill := 0
	if fr.KillAfter > 0 && !fr.fired && n > fr.KillAfter {
		kill = fr.KillAfter
		fr.fired = true
	}
	fr.mu.Unlock()
	// The degraded/quarantine-fill executor strips FleetRun so a local
	// fill can never recurse into another fleet.
	local := o
	local.FleetRun = nil
	results, rep := fleet.Run(fleet.Config{
		Workers:       fr.Workers,
		Spawn:         fr.Spawn,
		Exec:          Executor(local),
		Faults:        fr.Faults,
		CellTimeout:   fr.CellTimeout,
		MaxAttempts:   fr.MaxAttempts,
		LocalParallel: local.workers(),
		KillAfter:     kill,
		Logf:          fr.Logf,
	}, specs)
	fr.merge(rep)
	cells := make([]cell, len(results))
	for i, r := range results {
		cells[i] = decodeCell(r)
	}
	return cells
}

func (fr *FleetRun) merge(rep *fleet.Report) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	r := &fr.report
	r.Cells += rep.Cells
	r.Degraded = r.Degraded || rep.Degraded
	r.Recoveries += rep.Recoveries
	r.WorkerDeaths += rep.WorkerDeaths
	r.Respawns += rep.Respawns
	r.Timeouts += rep.Timeouts
	for k, v := range rep.TransportErrors {
		if r.TransportErrors == nil {
			r.TransportErrors = map[string]uint64{}
		}
		r.TransportErrors[k] += v
	}
	for k, v := range rep.FaultsInjected {
		if r.FaultsInjected == nil {
			r.FaultsInjected = map[string]uint64{}
		}
		r.FaultsInjected[k] += v
	}
	r.Quarantined = append(r.Quarantined, rep.Quarantined...)
}

// decodeCell reconstructs a cell from its result frame. The rendered
// text and aux bytes pass through verbatim; metrics and trace JSON are
// decoded into mergeable form. A decode failure (impossible for a
// digest-verified frame from a matching worker) degrades to a failed
// cell rather than a panic.
func decodeCell(r fleet.CellResult) cell {
	c := cell{text: r.Text, total: r.Total, aux: r.Aux, fail: r.Err}
	if len(r.Metrics) > 0 {
		snap, err := metrics.DecodeSnapshot(r.Metrics)
		if err != nil {
			c.fail = fmt.Sprintf("decoding metrics: %v", err)
			return c
		}
		c.snap = snap
	}
	if len(r.Trace) > 0 {
		tr, err := metrics.DecodeTraceJSON(r.Trace)
		if err != nil {
			c.fail = fmt.Sprintf("decoding trace: %v", err)
			return c
		}
		c.tr = tr
	}
	return c
}

// ---- Grid builders -------------------------------------------------

// table4Row is one row of Table 4: a (system, pattern) pair swept
// across the vdom-count columns.
type table4Row struct {
	label string
	arch  cycles.Arch
	sys   workload.PatternSystem
	pat   workload.Pattern
}

var table4Rows = []table4Row{
	{"VDom X86f seq", cycles.X86, workload.PatternVDomFast, workload.Sequential},
	{"VDom X86f trig", cycles.X86, workload.PatternVDomFast, workload.SwitchTriggering},
	{"VDom X86s seq", cycles.X86, workload.PatternVDomSecure, workload.Sequential},
	{"VDom X86s trig", cycles.X86, workload.PatternVDomSecure, workload.SwitchTriggering},
	{"VDom X86e seq", cycles.X86, workload.PatternVDomEvict, workload.Sequential},
	{"libmpk seq", cycles.X86, workload.PatternLibmpk, workload.Sequential},
	{"EPK seq", cycles.X86, workload.PatternEPK, workload.Sequential},
	{"EPK trig", cycles.X86, workload.PatternEPK, workload.SwitchTriggering},
	{"VDom ARM seq", cycles.ARM, workload.PatternVDomSecure, workload.Sequential},
	{"VDom ARM trig", cycles.ARM, workload.PatternVDomSecure, workload.SwitchTriggering},
	{"VDom ARMe seq", cycles.ARM, workload.PatternVDomEvict, workload.Sequential},
}

func table4Grid(o Options) gridJobs {
	nc := len(table4Counts)
	return gridJobs{
		n: len(table4Rows) * nc,
		job: func(i int) cell {
			s, n := table4Rows[i/nc], table4Counts[i%nc]
			reg, tr := o.newCellSinks()
			r := workload.RunPattern(workload.PatternConfig{
				Arch: s.arch, System: s.sys, Pattern: s.pat, NumVdoms: n,
				Rounds:  o.patternRounds(),
				Metrics: reg, Trace: tr,
			})
			return cell{text: f0(r.AvgCycles), total: r.TotalCycles, reg: reg, tr: tr}
		},
	}
}

var (
	table5Counts = []int{2, 4, 8, 16, 32}
	table5Arches = []cycles.Arch{cycles.X86, cycles.ARM}
)

func table5Grid(o Options) gridJobs {
	return gridJobs{
		n: len(table5Arches) * len(table5Counts),
		job: func(i int) cell {
			arch, n := table5Arches[i/len(table5Counts)], table5Counts[i%len(table5Counts)]
			ov, ok := workload.MemSyncOverhead(arch, n)
			if !ok {
				return cell{text: "undefined"}
			}
			return cell{text: f1(ov * 100)}
		},
	}
}

func matrixGrid(o Options) gridJobs {
	names := backend.Names()
	na := len(matrixArches)
	return gridJobs{
		n: len(names) * na,
		job: func(i int) cell {
			name, arch := names[i/na], matrixArches[i%na]
			sys, ok := matrixSystem(name)
			if !ok {
				return cell{text: "NA"}
			}
			reg, tr := o.newCellSinks()
			r := workload.RunPattern(workload.PatternConfig{
				Arch: arch, System: sys, Pattern: workload.SwitchTriggering,
				NumVdoms: matrixVdoms, Rounds: o.patternRounds(),
				Metrics: reg, Trace: tr,
			})
			return cell{text: f0(r.AvgCycles), total: r.TotalCycles, reg: reg, tr: tr}
		},
	}
}

// fig1Clients is Figure 1's client-count axis.
var fig1Clients = []int{4, 8, 12, 16, 20, 24, 28, 32}

func fig1Grid(o Options) gridJobs {
	return gridJobs{
		n: len(fig1Clients),
		job: func(i int) cell {
			clients := fig1Clients[i]
			mk := func(sys workload.System) workload.HttpdResult {
				return workload.RunHttpd(workload.HttpdConfig{
					Arch: cycles.X86, System: sys, Clients: clients,
					RequestsPerClient: o.httpdRequests(), FileBytes: 16384, Workers: 25,
				})
			}
			base := mk(workload.Original)
			lm := mk(workload.Libmpk)
			ov := float64(lm.Makespan)/float64(base.Makespan) - 1

			// Attribute the overhead to the Figure 1 buckets by each
			// bucket's share of the extra cycles.
			st := lm.LibmpkStats
			bw := float64(st.BusyWaitCycles)
			sd := float64(st.ShootdownCycles)
			mg := float64(st.MgmtCycles)
			sum := bw + sd + mg
			if sum == 0 {
				sum = 1
			}
			row := []string{fmt.Sprint(clients), pct(ov), pct(ov * bw / sum), pct(ov * sd / sum), pct(ov * mg / sum)}
			return cell{text: strings.Join(row, rowSep)}
		},
	}
}

// fig5Clients is Figure 5's client-count axis per architecture.
func fig5Clients(arch cycles.Arch) []int {
	if arch == cycles.ARM {
		return []int{4, 8, 12, 16, 20, 24}
	}
	return []int{4, 12, 20, 28, 36, 44, 48}
}

// fig5Sizes is Figure 5's transferred-file-size axis.
var fig5Sizes = []uint64{1 << 10, 64 << 10, 128 << 10}

func fig5Grid(o Options, arch cycles.Arch, size uint64) gridJobs {
	clients := fig5Clients(arch)
	return gridJobs{
		n: len(clients) * len(fig5Systems),
		job: func(i int) cell {
			c, sys := clients[i/len(fig5Systems)], fig5Systems[i%len(fig5Systems)]
			r := workload.RunHttpd(workload.HttpdConfig{
				Arch: arch, System: sys, Clients: c,
				RequestsPerClient: o.httpdRequests(), FileBytes: size,
			})
			return cell{text: f0(r.ReqPerSec)}
		},
	}
}

// fig6Systems are Figure 6's compared systems.
var fig6Systems = []workload.System{workload.Original, workload.VDom, workload.EPK, workload.Libmpk}

// fig6Clients is Figure 6's client-count axis per architecture.
func fig6Clients(arch cycles.Arch) []int {
	if arch == cycles.ARM {
		return []int{4, 8, 12, 16, 20, 24}
	}
	return []int{4, 8, 12, 16, 24, 32, 40, 48}
}

func fig6Grid(o Options, arch cycles.Arch) gridJobs {
	clients := fig6Clients(arch)
	return gridJobs{
		n: len(clients) * len(fig6Systems),
		job: func(i int) cell {
			c, sys := clients[i/len(fig6Systems)], fig6Systems[i%len(fig6Systems)]
			r := workload.RunMySQL(workload.MySQLConfig{
				Arch: arch, System: sys, Clients: c,
				QueriesPerClient: o.mysqlQueries(),
			})
			if !r.Supported {
				return cell{text: "DNF"}
			}
			return cell{text: f0(r.QueriesPerS)}
		},
	}
}

// fig7Variant is one line of Figure 7.
type fig7Variant struct {
	name string
	cfg  func(arch cycles.Arch, threads int) workload.PMOConfig
}

var fig7Variants = []fig7Variant{
	{"lowerbound", func(a cycles.Arch, th int) workload.PMOConfig {
		return workload.PMOConfig{Arch: a, System: workload.VDomLowerbound, Threads: th}
	}},
	{"EPK", func(a cycles.Arch, th int) workload.PMOConfig {
		return workload.PMOConfig{Arch: a, System: workload.EPK, Threads: th}
	}},
	{"libmpk 4KB pages", func(a cycles.Arch, th int) workload.PMOConfig {
		return workload.PMOConfig{Arch: a, System: workload.Libmpk, Threads: th}
	}},
	{"libmpk 2MB huge pages", func(a cycles.Arch, th int) workload.PMOConfig {
		return workload.PMOConfig{Arch: a, System: workload.Libmpk, LibmpkMode: 1, Threads: th}
	}},
	{"VDS switch", func(a cycles.Arch, th int) workload.PMOConfig {
		return workload.PMOConfig{Arch: a, System: workload.VDom, Mode: workload.PMOSwitch, Threads: th}
	}},
	{"VDom eviction", func(a cycles.Arch, th int) workload.PMOConfig {
		return workload.PMOConfig{Arch: a, System: workload.VDom, Mode: workload.PMOEvict, Threads: th}
	}},
}

// fig7Threads is Figure 7's thread-count axis per architecture.
func fig7Threads(arch cycles.Arch) []int {
	if arch == cycles.ARM {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8}
}

func fig7Grid(o Options, arch cycles.Arch) gridJobs {
	threads := fig7Threads(arch)
	return gridJobs{
		n: len(fig7Variants) * len(threads),
		job: func(i int) cell {
			v, th := fig7Variants[i/len(threads)], threads[i%len(threads)]
			cfg := v.cfg(arch, th)
			cfg.OpsPerThread = o.pmoOps()
			base := cfg
			base.System = workload.Original
			b := workload.RunPMO(base)
			r := workload.RunPMO(cfg)
			return cell{text: pct(float64(r.Makespan)/float64(b.Makespan) - 1)}
		},
	}
}

// ubCase is one UnixBench run: an architecture and a suite.
type ubCase struct {
	arch     cycles.Arch
	parallel bool
}

var ubCases = []ubCase{
	{cycles.X86, false}, {cycles.X86, true},
	{cycles.ARM, false}, {cycles.ARM, true},
}

func unixBenchGrid(o Options) gridJobs {
	return gridJobs{
		n: len(ubCases),
		job: func(i int) cell {
			c := ubCases[i]
			suite := "single-thread"
			if c.parallel {
				suite = "parallel"
			}
			r := workload.RunUnixBench(c.arch, c.parallel)
			worst := r.Scores[0]
			for _, s := range r.Scores {
				if s.Relative < worst.Relative {
					worst = s
				}
			}
			row := []string{c.arch.String(), suite, f1(r.Index) + "%",
				fmt.Sprintf("%s (%.1f%%)", worst.Test, worst.Relative)}
			return cell{text: strings.Join(row, rowSep)}
		},
	}
}

// chaosWire is one soak shard's outcome as it travels in a chaos cell's
// aux payload: everything the coordinator's aggregation, rendering, and
// soak report need, with the violation listings pre-rendered and the
// minimal replayable fail trace as encoded vdom-trace bytes. The
// in-process path produces the identical struct, so both paths
// aggregate from the same representation.
type chaosWire struct {
	Ops           int               `json:"ops"`
	Cycles        uint64            `json:"cycles"`
	Injected      map[string]uint64 `json:"injected,omitempty"`
	Recovered     map[string]uint64 `json:"recovered,omitempty"`
	Violations    []string          `json:"violations,omitempty"`
	Unrecovered   []string          `json:"unrecovered,omitempty"`
	Audits        int               `json:"audits"`
	ASIDRollovers uint64            `json:"asidRollovers"`
	TraceEvents   int               `json:"traceEvents,omitempty"`
	FailTrace     []byte            `json:"failTrace,omitempty"`
}

func decodeChaosWire(aux []byte) (chaosWire, error) {
	var w chaosWire
	if err := json.Unmarshal(aux, &w); err != nil {
		return w, fmt.Errorf("bench: decoding chaos shard: %w", err)
	}
	return w, nil
}

// chaosGrid is the chaos soak's shard fan-out: chaosShards independent
// machines, each soaked under seed+i, each shipping its outcome as a
// chaosWire aux payload.
func chaosGrid(o Options, kern string, seed uint64) gridJobs {
	totalOps := o.chaosSoakOps()
	ctx := o.ctx()
	return gridJobs{
		n: chaosShards,
		job: func(i int) cell {
			ops := totalOps / chaosShards
			if i < totalOps%chaosShards {
				ops++
			}
			reg, tr := o.newCellSinks()
			fault := chaos.Config{
				Seed:           seed + uint64(i),
				DropIPI:        0.05,
				DelayIPI:       0.05,
				StaleTLB:       0.03,
				ASIDExhaustion: 0.02,
				ASIDLimit:      24,
				VDSAllocFail:   0.10,
				PdomExhaustion: 0.05,
				SpuriousFault:  0.02,
			}
			if kern == "dpti" {
				// DPTI has no manager-level hooks; zero the faults that
				// would never draw so the injected counters stay honest.
				fault.VDSAllocFail = 0
				fault.PdomExhaustion = 0
			}
			scfg := chaos.SoakConfig{
				Chaos:   fault,
				Ops:     ops,
				Metrics: reg,
				Trace:   tr,
				Record:  o.TraceDump != "",
			}
			var s interface {
				NextOp() int
				Step() bool
				Finish() *chaos.SoakResult
			}
			if kern == "dpti" {
				s = chaos.StartSoakDPTI(scfg)
			} else {
				s = chaos.StartSoak(scfg)
			}
			// Step with a periodic wall-clock escape hatch: a -timeout
			// cancels the soak between ops instead of hanging the job.
			for {
				if s.NextOp()%256 == 0 && ctx.Err() != nil {
					return cell{fail: fmt.Sprintf("chaos shard %d cancelled at op %d: %v", i, s.NextOp(), ctx.Err())}
				}
				if !s.Step() {
					break
				}
			}
			res := s.Finish()
			w := chaosWire{
				Ops:           res.Ops,
				Cycles:        uint64(res.Cycles),
				Injected:      res.Injected,
				Recovered:     res.Recovered,
				Unrecovered:   res.Unrecovered,
				Audits:        res.Audits,
				ASIDRollovers: res.ASIDRollovers,
			}
			for _, v := range res.Violations {
				w.Violations = append(w.Violations, fmt.Sprint(v))
			}
			if res.Trace != nil {
				w.TraceEvents = len(res.Trace.Events)
			}
			if ft := res.FailTrace(); ft != nil {
				w.FailTrace = replay.Encode(ft)
			}
			aux, err := json.Marshal(w)
			if err != nil {
				return cell{fail: fmt.Sprintf("chaos shard %d: encoding: %v", i, err)}
			}
			return cell{total: uint64(res.Cycles), reg: reg, tr: tr, aux: aux}
		},
	}
}
