package snapshot_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"vdom/internal/chaos"
	"vdom/internal/metrics"
	"vdom/internal/replay"
	"vdom/internal/snapshot"
	"vdom/internal/tlb"
)

// soakCfg is the shared crash-soak configuration: every fault class
// enabled, small enough to run each crash kind under -race.
func soakCfg(seed uint64) chaos.SoakConfig {
	return chaos.SoakConfig{
		Chaos: chaos.Config{
			Seed:           seed,
			DropIPI:        0.05,
			DelayIPI:       0.05,
			StaleTLB:       0.03,
			ASIDExhaustion: 0.02,
			ASIDLimit:      tlb.ASID(24),
			VDSAllocFail:   0.10,
			PdomExhaustion: 0.05,
			SpuriousFault:  0.02,
		},
		Ops:    600,
		Record: true,
	}
}

// TestCrashRecoverBitIdentical is the tentpole acceptance check: for
// each crash kind, checkpoint → crash → watchdog/audit detection →
// restore + tail replay must yield a run whose trace (end state, final
// clock, and domain-map digest included) is byte-identical to the
// uninterrupted run of the same seed, with identical fault counters and
// metrics.
func TestCrashRecoverBitIdentical(t *testing.T) {
	for _, kind := range []chaos.CrashKind{chaos.CrashCore, chaos.CrashKernelPanic, chaos.CrashTornDomainMap} {
		t.Run(kind.String(), func(t *testing.T) {
			seed := uint64(0x5eed + kind)
			refCfg := soakCfg(seed)
			refMetrics := metrics.New()
			refCfg.Metrics = refMetrics
			ref := chaos.Soak(refCfg)
			if len(ref.Unrecovered) != 0 || len(ref.Violations) != 0 {
				t.Fatalf("reference run unhealthy: %d unrecovered, %d violations", len(ref.Unrecovered), len(ref.Violations))
			}

			crashCfg := soakCfg(seed)
			crashMetrics := metrics.New()
			crashCfg.Metrics = crashMetrics
			out, err := chaos.CrashSoak(crashCfg, chaos.CrashConfig{Kind: kind, AtOp: 351, CheckpointEvery: 100})
			if err != nil {
				t.Fatalf("CrashSoak: %v", err)
			}
			if kind != chaos.CrashTornDomainMap && !out.WatchdogFired {
				t.Errorf("watchdog did not fire for %s", kind)
			}
			if out.TailEvents == 0 {
				t.Errorf("recovery replayed no tail events")
			}
			if out.CheckpointOp != 300 {
				t.Errorf("recovered from checkpoint at op %d, want 300", out.CheckpointOp)
			}
			if len(out.PostViolations) != 0 {
				t.Errorf("recovered system failed audit: %v", out.PostViolations)
			}
			res := out.Result
			if len(res.Unrecovered) != 0 || len(res.Violations) != 0 {
				t.Fatalf("crash run unhealthy: %v %v", res.Unrecovered, res.Violations)
			}

			refBytes := replay.Encode(ref.Trace)
			gotBytes := replay.Encode(res.Trace)
			if !bytes.Equal(refBytes, gotBytes) {
				t.Fatalf("recovered trace differs from uninterrupted run (%d vs %d bytes)", len(gotBytes), len(refBytes))
			}
			for k, v := range ref.Trace.End {
				if res.Trace.End[k] != v {
					t.Errorf("end state %q: recovered %d, uninterrupted %d", k, res.Trace.End[k], v)
				}
			}
			if fmt.Sprint(ref.Injected) != fmt.Sprint(res.Injected) ||
				fmt.Sprint(ref.Recovered) != fmt.Sprint(res.Recovered) {
				t.Errorf("fault counters diverged:\nref %v %v\ngot %v %v", ref.Injected, ref.Recovered, res.Injected, res.Recovered)
			}

			var refJSON, gotJSON bytes.Buffer
			if err := refMetrics.WriteJSON(&refJSON); err != nil {
				t.Fatal(err)
			}
			if err := crashMetrics.WriteJSON(&gotJSON); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refJSON.Bytes(), gotJSON.Bytes()) {
				t.Errorf("metrics snapshots differ across recovery")
			}
		})
	}
}

// TestSnapshotContainerRoundTrip checks the container codec alone:
// sections, order, meta, and payloads all survive Encode/Decode.
func TestSnapshotContainerRoundTrip(t *testing.T) {
	st := &snapshot.State{Meta: snapshot.Meta{
		Header: replay.Header{Version: replay.FormatVersion, Kernel: replay.KernelVDom, Arch: "x86", Cores: 2},
		Clock:  12345, EventIndex: 42,
	}}
	st.AddSection("alpha", []byte("hello"))
	st.AddSection("beta", nil)
	got, err := snapshot.Decode(snapshot.Encode(st))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Meta.Clock != 12345 || got.Meta.EventIndex != 42 || got.Meta.Header.Cores != 2 {
		t.Errorf("meta mismatch: %+v", got.Meta)
	}
	if len(got.Sections) != 2 || got.Sections[0].Name != "alpha" || string(got.Sections[0].Data) != "hello" {
		t.Errorf("sections mismatch: %+v", got.Sections)
	}
	if d, ok := got.Section("beta"); !ok || len(d) != 0 {
		t.Errorf("beta section lost")
	}
}

// TestDecodeTypedErrors pins each decode failure mode to its sentinel.
func TestDecodeTypedErrors(t *testing.T) {
	st := &snapshot.State{Meta: snapshot.Meta{Clock: 7}}
	st.AddSection("x", []byte("payload"))
	valid := snapshot.Encode(st)

	if _, err := snapshot.Decode([]byte("nope")); !errors.Is(err, snapshot.ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}
	bad := append([]byte(nil), valid...)
	bad[4] = 99 // version varint
	if _, err := snapshot.Decode(bad); !errors.Is(err, snapshot.ErrBadVersion) {
		t.Errorf("bad version: got %v", err)
	}
	if _, err := snapshot.Decode(valid[:len(valid)-3]); !errors.Is(err, snapshot.ErrTruncated) {
		t.Errorf("truncated: got %v", err)
	}
	bad = append([]byte(nil), valid...)
	bad[len(bad)-1] ^= 0xff // last payload byte
	if _, err := snapshot.Decode(bad); !errors.Is(err, snapshot.ErrBadChecksum) {
		t.Errorf("bad checksum: got %v", err)
	}
	if _, err := snapshot.Decode(append(append([]byte(nil), valid...), 0xaa)); !errors.Is(err, snapshot.ErrBadRecord) {
		t.Errorf("trailing bytes: got %v", err)
	}
}

// FuzzSnapshotDecode asserts Decode never panics, whatever the input.
func FuzzSnapshotDecode(f *testing.F) {
	st := &snapshot.State{Meta: snapshot.Meta{
		Header: replay.Header{Version: replay.FormatVersion, Kernel: replay.KernelVDom, Arch: "x86", Cores: 1},
		Clock:  99, EventIndex: 3,
	}}
	st.AddSection("chaos/injector", []byte{1, 2, 3, 4})
	valid := snapshot.Encode(st)
	f.Add(valid)
	for _, n := range []int{0, 3, 4, 5, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := snapshot.Decode(data)
		if err == nil && st == nil {
			t.Fatal("nil state with nil error")
		}
	})
}

// BenchmarkCheckpoint measures full-System capture+encode throughput in
// snapshot bytes per second.
func BenchmarkCheckpoint(b *testing.B) {
	s := chaos.StartSoak(soakCfg(7))
	for i := 0; i < 500; i++ {
		s.Step()
	}
	snap, err := s.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestore measures decode+restore throughput in snapshot bytes
// per second (no tail replay).
func BenchmarkRestore(b *testing.B) {
	s := chaos.StartSoak(soakCfg(7))
	for i := 0; i < 500; i++ {
		s.Step()
	}
	snap, err := s.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := snapshot.Decode(snap)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := snapshot.Restore(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTailRecovery measures the full recovery path — decode,
// restore, and trace-tail replay — reporting replayed events per second.
func BenchmarkTailRecovery(b *testing.B) {
	cfg := soakCfg(7)
	s := chaos.StartSoak(cfg)
	for i := 0; i < 300; i++ {
		s.Step()
	}
	snap, err := s.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	for s.NextOp() <= cfg.Ops {
		s.Step()
	}
	var events int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := s.Recover(snap)
		if err != nil {
			b.Fatal(err)
		}
		events += rec.TailEvents
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
}

// TestRestoreNamesSectionAndOffset pins the restore-error contract: a
// section whose payload passes the CRC but truncates mid-gob must fail
// with an error that names the section, carries its container offset,
// and stays errors.Is-matchable against ErrBadRecord.
func TestRestoreNamesSectionAndOffset(t *testing.T) {
	s := chaos.StartSoak(soakCfg(11))
	for i := 0; i < 50; i++ {
		s.Step()
	}
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mm/as", "kernel", "hw/machine", "core/manager"} {
		t.Run(name, func(t *testing.T) {
			st, err := snapshot.Decode(snap)
			if err != nil {
				t.Fatal(err)
			}
			// Drop the payload's final byte and re-encode: the CRC is
			// recomputed over the truncated payload, so the container
			// decodes cleanly and the gob failure is Restore's to report.
			found := false
			for i := range st.Sections {
				if st.Sections[i].Name == name {
					d := st.Sections[i].Data
					if len(d) == 0 {
						t.Fatalf("section %q empty", name)
					}
					st.Sections[i].Data = d[:len(d)-1]
					found = true
				}
			}
			if !found {
				t.Fatalf("section %q missing from checkpoint", name)
			}
			cut, err := snapshot.Decode(snapshot.Encode(st))
			if err != nil {
				t.Fatalf("truncated container must still decode (CRC-valid), got %v", err)
			}
			var off int64 = -1
			for _, sec := range cut.Sections {
				if sec.Name == name {
					off = sec.Offset
				}
			}
			_, _, rerr := snapshot.Restore(cut)
			if rerr == nil {
				t.Fatal("Restore succeeded on a truncated section")
			}
			if !errors.Is(rerr, snapshot.ErrBadRecord) {
				t.Errorf("errors.Is(%v, ErrBadRecord) = false", rerr)
			}
			if !strings.Contains(rerr.Error(), fmt.Sprintf("%q", name)) {
				t.Errorf("error does not name section %q: %v", name, rerr)
			}
			if !strings.Contains(rerr.Error(), fmt.Sprintf("offset %d", off)) {
				t.Errorf("error does not carry offset %d: %v", off, rerr)
			}
		})
	}
}

// BenchmarkRingAppend measures the atomic checkpoint append (write,
// fsync, rename, prune) at steady state.
func BenchmarkRingAppend(b *testing.B) {
	s := chaos.StartSoak(soakCfg(13))
	for i := 0; i < 100; i++ {
		s.Step()
	}
	snap, err := s.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	r, err := snapshot.NewRing(b.TempDir(), "bench", 4)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Append(i, snap); err != nil {
			b.Fatal(err)
		}
	}
}
