package core

import (
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
)

func benchFixture(b *testing.B, nas int) (*Manager, *kernel.Task, []VdomID, []pagetable.VAddr) {
	mach := hw.NewMachine(hw.Config{Arch: cycles.X86, NumCores: 2, TLBCapacity: 4096})
	k := kernel.New(kernel.Config{Machine: mach, VDomEnabled: true})
	proc := k.NewProcess()
	m := Attach(proc, DefaultPolicy())
	task := proc.NewTask(0)
	if _, err := m.VdrAlloc(task, nas); err != nil {
		b.Fatal(err)
	}
	next := pagetable.VAddr(0x100000000)
	var doms []VdomID
	var bases []pagetable.VAddr
	for i := 0; i < 20; i++ {
		base := next
		next += 4 * pagetable.PMDSize
		if _, err := task.Mmap(base, pagetable.PageSize, true); err != nil {
			b.Fatal(err)
		}
		d, _ := m.AllocVdom(false)
		if _, err := m.Mprotect(task, base, pagetable.PageSize, d); err != nil {
			b.Fatal(err)
		}
		doms = append(doms, d)
		bases = append(bases, base)
	}
	return m, task, doms, bases
}

// BenchmarkWrVdrMapped measures the simulator's speed on the hot path: a
// permission flip on a resident vdom (the 104-virtual-cycle operation).
func BenchmarkWrVdrMapped(b *testing.B) {
	m, task, doms, _ := benchFixture(b, 2)
	if _, err := m.WrVdr(task, doms[0], VPermReadWrite); err != nil {
		b.Fatal(err)
	}
	perms := []VPerm{VPermRead, VPermReadWrite}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.WrVdr(task, doms[0], perms[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWrVdrEviction measures a full eviction+remap round per op.
func BenchmarkWrVdrEviction(b *testing.B) {
	m, task, doms, _ := benchFixture(b, 1)
	for _, d := range doms {
		if _, err := m.WrVdr(task, d, VPermReadWrite); err != nil {
			b.Fatal(err)
		}
		if _, err := m.WrVdr(task, d, VPermNone); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := doms[i%len(doms)]
		if _, err := m.WrVdr(task, d, VPermReadWrite); err != nil {
			b.Fatal(err)
		}
		if _, err := m.WrVdr(task, d, VPermNone); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessWarm measures a fully warm protected access (TLB hit +
// domain check).
func BenchmarkAccessWarm(b *testing.B) {
	m, task, doms, bases := benchFixture(b, 2)
	if _, err := m.WrVdr(task, doms[0], VPermReadWrite); err != nil {
		b.Fatal(err)
	}
	if _, err := task.Access(bases[0], true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := task.Access(bases[0], true); err != nil {
			b.Fatal(err)
		}
	}
}
