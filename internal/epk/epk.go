// Package epk models the EPK baseline (Gu et al., USENIX ATC 2022): MPK
// scaled beyond 16 domains by spreading protection keys across multiple
// extended page tables (EPTs) and switching between them with VMFUNC
// inside a virtual machine.
//
// EPK's code is not publicly available; the VDom paper itself evaluates it
// by inserting the cycle counts EPK reports into the applications (§7.4)
// and running them inside a tuned KVM guest. This package reproduces that
// exact methodology: a per-thread domain-switch cost model (MPK write
// within the current EPT group, VMFUNC across groups, slower as the total
// EPT count grows) plus a VM tax that scales kernel-bound work (syscalls,
// faults, IO) and — mildly — user-bound work (nested-paging TLB misses).
//
// It covers the paper's §7.4 comparison and is the "Baseline: EPK" row of
// the DESIGN.md §3 module map. Stats.Emit publishes the switch counters
// under the epk/ metric prefix (OBSERVABILITY.md).
package epk

import (
	"vdom/internal/cycles"
	"vdom/internal/tap"
)

// KeysPerEPT is how many protection keys one EPT group contributes. EPK
// reserves pkey 0 per group, leaving 15 for domains.
const KeysPerEPT = 15

// Costs of a domain switch, as reported by EPK and inserted verbatim by
// the paper's simulation: 97 cycles for an in-group MPK switch; VMFUNC
// switches start at ~350 cycles and degrade to ~830 as the EPT count
// grows.
const (
	MPKSwitchCycles = 97
	vmfuncBase      = 30
	vmfuncPerEPT    = 160
	vmfuncMin       = 169 // a bare VMFUNC (Table 3)
)

// VMFuncCycles returns the cost of one VMFUNC EPT switch when numEPTs
// extended page tables are installed. Fitted to the paper's reported
// pairs: ≈350 cycles with 2–3 EPTs (32 domains), ≈830 with 5 (64–70
// domains).
func VMFuncCycles(numEPTs int) cycles.Cost {
	if numEPTs < 1 {
		numEPTs = 1
	}
	c := cycles.Cost(vmfuncBase + vmfuncPerEPT*numEPTs)
	if c < vmfuncMin {
		return vmfuncMin
	}
	return c
}

// VMTax models the overhead of running the application inside the tuned
// KVM guest of §7.4: kernel entries (syscalls, faults, IO submissions) pay
// virtualization exits, and user-space execution pays a small nested-
// paging (EPT-walk) tax. The defaults reproduce the paper's observations:
// ≈5–7% on syscall-heavy servers (httpd, MySQL) and ≈2% on the pure
// user-space PMO benchmark.
type VMTax struct {
	// UserFactor multiplies user-space work (nested paging TLB costs).
	UserFactor float64
	// KernelFactor multiplies in-kernel work (vmexits on syscalls,
	// faults, interrupt delivery).
	KernelFactor float64
}

// DefaultVMTax returns the calibrated guest overhead.
func DefaultVMTax() VMTax {
	return VMTax{UserFactor: 1.02, KernelFactor: 1.30}
}

// Apply returns the in-VM cost of a workload slice split into user and
// kernel cycles.
func (t VMTax) Apply(user, kern cycles.Cost) cycles.Cost {
	return cycles.Cost(float64(user)*t.UserFactor + float64(kern)*t.KernelFactor)
}

// Stats counts EPK's switch events.
type Stats struct {
	MPKSwitches    uint64
	VMFuncSwitches uint64
}

// Emit publishes the stats as named metrics counters under the epk/
// prefix (see OBSERVABILITY.md for the catalogue).
func (s Stats) Emit(emit func(name string, v uint64)) {
	emit("epk/mpk-switches", s.MPKSwitches)
	emit("epk/vmfunc-switches", s.VMFuncSwitches)
}

// System is one EPK-protected process: a set of domains spread over EPT
// groups and the per-thread current group.
type System struct {
	numDomains int
	numEPTs    int
	current    map[int]int // threadID → EPT group
	tax        VMTax
	tap        tap.Tap

	// Stats is exported for the experiment harness.
	Stats Stats
}

// SetTap attaches a trace recorder; completed domain switches arrive as
// unified tap.Events (OpEpkSwitch). Pass nil (the default) to detach.
func (s *System) SetTap(t tap.Tap) { s.tap = t }

// NumDomains returns the domain capacity the system was created with.
func (s *System) NumDomains() int { return s.numDomains }

// New creates an EPK system able to host numDomains domains.
func New(numDomains int, tax VMTax) *System {
	epts := (numDomains + KeysPerEPT - 1) / KeysPerEPT
	if epts < 1 {
		epts = 1
	}
	return &System{
		numDomains: numDomains,
		numEPTs:    epts,
		current:    make(map[int]int),
		tax:        tax,
	}
}

// NumEPTs returns the number of extended page tables in use.
func (s *System) NumEPTs() int { return s.numEPTs }

// Tax returns the VM overhead model.
func (s *System) Tax() VMTax { return s.tax }

// groupOf returns the EPT group hosting the domain.
func groupOf(domain int) int { return domain / KeysPerEPT }

// Switch performs one domain switch for the thread and returns the
// inserted cycles: an MPK register write when the target domain lives in
// the thread's current EPT group, a VMFUNC switch otherwise.
func (s *System) Switch(threadID, domain int) (cost cycles.Cost) {
	defer func() {
		if s.tap != nil {
			s.tap(tap.Event{Op: tap.OpEpkSwitch, TID: threadID, Dom: uint64(domain), Cost: cost})
		}
	}()
	g := groupOf(domain)
	if cur, ok := s.current[threadID]; ok && cur == g {
		s.Stats.MPKSwitches++
		return MPKSwitchCycles
	}
	s.current[threadID] = g
	if s.numEPTs == 1 {
		// A single EPT never needs VMFUNC; first use just loads the
		// group.
		s.Stats.MPKSwitches++
		return MPKSwitchCycles
	}
	s.Stats.VMFuncSwitches++
	return VMFuncCycles(s.numEPTs)
}

// WorkInVM converts a (user, kernel) cycle split into guest cycles.
func (s *System) WorkInVM(user, kern cycles.Cost) cycles.Cost {
	return s.tax.Apply(user, kern)
}
