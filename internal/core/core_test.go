package core

import (
	"errors"
	"testing"

	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
)

const pg = pagetable.PageSize

// usablePdoms is the number of pdoms vdoms can occupy per VDS (16 minus
// the default and access-never domains).
const usablePdoms = 16 - firstUsablePdom

type fixture struct {
	k    *kernel.Kernel
	proc *kernel.Process
	m    *Manager
	next pagetable.VAddr
}

func newFixture(t *testing.T, arch cycles.Arch, cores int, pol Policy) *fixture {
	t.Helper()
	mach := hw.NewMachine(hw.Config{Arch: arch, NumCores: cores, TLBCapacity: 4096})
	k := kernel.New(kernel.Config{Machine: mach, VDomEnabled: true})
	proc := k.NewProcess()
	return &fixture{
		k:    k,
		proc: proc,
		m:    Attach(proc, pol),
		next: 0x100000000,
	}
}

func x86Fixture(t *testing.T) *fixture {
	return newFixture(t, cycles.X86, 4, DefaultPolicy())
}

// newVdomRegion mmaps `pages` pages, assigns them to a fresh vdom, and
// returns (vdom, base address).
func (f *fixture) newVdomRegion(t *testing.T, task *kernel.Task, pages int, freq bool) (VdomID, pagetable.VAddr) {
	t.Helper()
	base := f.next
	f.next += pagetable.VAddr(pages*pg) + 16*pagetable.PMDSize // keep regions PMD-separated
	if _, err := task.Mmap(base, uint64(pages*pg), true); err != nil {
		t.Fatal(err)
	}
	d, _ := f.m.AllocVdom(freq)
	if _, err := f.m.Mprotect(task, base, uint64(pages*pg), d); err != nil {
		t.Fatal(err)
	}
	return d, base
}

func grant(t *testing.T, m *Manager, task *kernel.Task, d VdomID, p VPerm) cycles.Cost {
	t.Helper()
	c, err := m.WrVdr(task, d, p)
	if err != nil {
		t.Fatalf("WrVdr(%d, %v): %v", d, p, err)
	}
	return c
}

func TestVdomAllocUnlimitedIDs(t *testing.T) {
	f := x86Fixture(t)
	var prev VdomID
	for i := 0; i < 1000; i++ {
		d, _ := f.m.AllocVdom(false)
		if d <= prev {
			t.Fatalf("vdom ids not strictly increasing: %d after %d", d, prev)
		}
		prev = d
	}
}

func TestBasicProtectAndAccess(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	d, base := f.newVdomRegion(t, task, 1, false)

	// Without permission: SIGSEGV.
	if _, err := task.Access(base, false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Fatalf("access without perm = %v, want SIGSEGV", err)
	}
	// Grant read: read works, write faults fatally.
	grant(t, f.m, task, d, VPermRead)
	if _, err := task.Access(base, false); err != nil {
		t.Fatalf("read with WD failed: %v", err)
	}
	if _, err := task.Access(base, true); !errors.Is(err, kernel.ErrSigsegv) {
		t.Fatalf("write with WD = %v, want SIGSEGV", err)
	}
	// Full access: write works.
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(base, true); err != nil {
		t.Fatalf("write with FA failed: %v", err)
	}
	// Revoke: both fail.
	grant(t, f.m, task, d, VPermNone)
	if _, err := task.Access(base, false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Fatalf("read after revoke = %v, want SIGSEGV", err)
	}
}

func TestThreadWithoutVDRCannotTouchProtectedMemory(t *testing.T) {
	f := x86Fixture(t)
	owner := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(owner, 4); err != nil {
		t.Fatal(err)
	}
	d, base := f.newVdomRegion(t, owner, 1, false)
	grant(t, f.m, owner, d, VPermReadWrite)
	if _, err := owner.Access(base, true); err != nil {
		t.Fatal(err)
	}
	// A second thread with no VDR must be denied.
	intruder := f.proc.NewTask(1)
	if _, err := intruder.Access(base, false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Fatalf("intruder access = %v, want SIGSEGV", err)
	}
}

func TestCrossThreadIsolation(t *testing.T) {
	f := x86Fixture(t)
	t1, t2 := f.proc.NewTask(0), f.proc.NewTask(1)
	for _, task := range []*kernel.Task{t1, t2} {
		if _, err := f.m.VdrAlloc(task, 4); err != nil {
			t.Fatal(err)
		}
	}
	d, base := f.newVdomRegion(t, t1, 1, false)
	grant(t, f.m, t1, d, VPermReadWrite)
	if _, err := t1.Access(base, true); err != nil {
		t.Fatal(err)
	}
	// t2 shares the VDS but has no VDR permission on d.
	if _, err := t2.Access(base, false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Fatalf("cross-thread access = %v, want SIGSEGV", err)
	}
	// Per-thread views: granting t2 read keeps t1's write ability.
	grant(t, f.m, t2, d, VPermRead)
	if _, err := t2.Access(base, false); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Access(base, true); !errors.Is(err, kernel.ErrSigsegv) {
		t.Fatalf("t2 write with WD = %v, want SIGSEGV", err)
	}
	if _, err := t1.Access(base, true); err != nil {
		t.Fatalf("t1 lost write access: %v", err)
	}
}

func TestMapsToFreePdomWithinCapacity(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < usablePdoms; i++ {
		d, base := f.newVdomRegion(t, task, 1, false)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(base, true); err != nil {
			t.Fatalf("vdom %d: %v", i, err)
		}
	}
	if len(f.m.VDSes()) != 1 {
		t.Errorf("VDSes = %d, want 1 (all vdoms fit)", len(f.m.VDSes()))
	}
	if f.m.Stats.Evictions != 0 || f.m.Stats.VDSSwitches != 0 {
		t.Errorf("unnecessary evictions/switches: %+v", f.m.Stats)
	}
	if f.m.Stats.MapsToFree != usablePdoms {
		t.Errorf("MapsToFree = %d, want %d", f.m.Stats.MapsToFree, usablePdoms)
	}
}

func TestOverflowSwitchesToNewVDS(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	doms := make([]VdomID, 0, usablePdoms+1)
	bases := make([]pagetable.VAddr, 0, usablePdoms+1)
	for i := 0; i <= usablePdoms; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		doms = append(doms, d)
		bases = append(bases, b)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(bases[i], true); err != nil {
			t.Fatalf("vdom #%d: %v", i, err)
		}
		// Close the domain after use (least privilege): the overflow
		// activation then prefers a VDS switch over eviction.
		grant(t, f.m, task, d, VPermNone)
	}
	if len(f.m.VDSes()) < 2 {
		t.Errorf("VDSes = %d, want >= 2 after overflow", len(f.m.VDSes()))
	}
	if f.m.Stats.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (nas budget not exhausted)", f.m.Stats.Evictions)
	}
	// All vdoms remain reachable.
	for i, d := range doms {
		grant(t, f.m, task, d, VPermRead)
		if _, err := task.Access(bases[i], false); err != nil {
			t.Fatalf("re-access vdom #%d: %v", i, err)
		}
		grant(t, f.m, task, d, VPermNone)
	}
}

func TestNasOneForcesEviction(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= usablePdoms; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatalf("vdom #%d: %v", i, err)
		}
		grant(t, f.m, task, d, VPermNone)
	}
	if len(f.m.VDSes()) != 1 {
		t.Errorf("VDSes = %d, want 1 under nas=1", len(f.m.VDSes()))
	}
	if f.m.Stats.Evictions == 0 {
		t.Error("no evictions despite nas=1 overflow")
	}
	if f.m.Stats.VDSSwitches != 0 {
		t.Errorf("VDS switches = %d, want 0 under nas=1", f.m.Stats.VDSSwitches)
	}
}

func TestFreqVdomEvictsInsteadOfSwitching(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < usablePdoms; i++ {
		d, _ := f.newVdomRegion(t, task, 1, false)
		grant(t, f.m, task, d, VPermReadWrite)
		grant(t, f.m, task, d, VPermNone)
	}
	// A frequently-accessed vdom overflows: §5.4 prescribes eviction in
	// place, not a VDS switch.
	d, b := f.newVdomRegion(t, task, 1, true)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if f.m.Stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 for freq vdom", f.m.Stats.Evictions)
	}
	if f.m.Stats.VDSSwitches != 0 {
		t.Errorf("VDS switches = %d, want 0", f.m.Stats.VDSSwitches)
	}
}

func TestAccessibleMappedVdomsForceEviction(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	var first VdomID
	for i := 0; i < usablePdoms; i++ {
		d, _ := f.newVdomRegion(t, task, 1, false)
		if i == 0 {
			first = d
		}
		grant(t, f.m, task, d, VPermReadWrite)
		if i > 0 {
			grant(t, f.m, task, d, VPermNone)
		}
	}
	// `first` is still accessible: activating a new vdom must evict (a
	// switch would strand the accessible mapping), and must not evict
	// `first` itself.
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if f.m.Stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", f.m.Stats.Evictions)
	}
	if !f.m.VDSes()[0].Mapped(first) {
		t.Error("accessible vdom was evicted")
	}
}

func TestMigrationWhenVDSShared(t *testing.T) {
	// Two threads share VDS0 and together exceed its pdoms: the thread
	// that overflows must migrate, not evict (flowchart ❹→❻❼❽).
	f := x86Fixture(t)
	t1, t2 := f.proc.NewTask(0), f.proc.NewTask(1)
	for _, task := range []*kernel.Task{t1, t2} {
		if _, err := f.m.VdrAlloc(task, 4); err != nil {
			t.Fatal(err)
		}
	}
	// t1 holds 8 vdoms accessible, t2 holds 6; VDS0 is now full.
	for i := 0; i < 8; i++ {
		d, b := f.newVdomRegion(t, t1, 1, false)
		grant(t, f.m, t1, d, VPermReadWrite)
		if _, err := t1.Access(b, true); err != nil {
			t.Fatal(err)
		}
	}
	var t2doms []VdomID
	var t2bases []pagetable.VAddr
	for i := 0; i < 6; i++ {
		d, b := f.newVdomRegion(t, t2, 1, false)
		t2doms = append(t2doms, d)
		t2bases = append(t2bases, b)
		grant(t, f.m, t2, d, VPermReadWrite)
		if _, err := t2.Access(b, true); err != nil {
			t.Fatal(err)
		}
	}
	// t2 needs one more: it must migrate to a new VDS carrying its 6
	// active vdoms plus the new one.
	d, b := f.newVdomRegion(t, t2, 1, false)
	grant(t, f.m, t2, d, VPermReadWrite)
	if _, err := t2.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if f.m.Stats.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1 (stats: %+v)", f.m.Stats.Migrations, f.m.Stats)
	}
	if f.m.Stats.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", f.m.Stats.Evictions)
	}
	v1 := f.m.VDROf(t1).Current()
	v2 := f.m.VDROf(t2).Current()
	if v1 == v2 {
		t.Fatal("threads still share a VDS after migration")
	}
	// The migrated thread keeps access to every prior vdom without
	// faulting fatally, and t1 is undisturbed.
	for i, d := range t2doms {
		if _, err := t2.Access(t2bases[i], true); err != nil {
			t.Fatalf("t2 lost vdom %d after migration: %v", d, err)
		}
	}
	// The paper's Figure 3 invariant: migration remaps the thread's
	// active vdoms in the target VDS.
	for _, d := range t2doms {
		if !v2.Mapped(d) {
			t.Errorf("active vdom %d not mapped in migration target", d)
		}
	}
}

func TestThreadCountsMaintained(t *testing.T) {
	f := x86Fixture(t)
	t1, t2 := f.proc.NewTask(0), f.proc.NewTask(1)
	for _, task := range []*kernel.Task{t1, t2} {
		if _, err := f.m.VdrAlloc(task, 4); err != nil {
			t.Fatal(err)
		}
	}
	d, _ := f.newVdomRegion(t, t1, 1, false)
	vds := f.m.VDROf(t1).Current()
	grant(t, f.m, t1, d, VPermReadWrite)
	if got := vds.threadsOn(d); got != 1 {
		t.Errorf("#thread = %d after one grant, want 1", got)
	}
	grant(t, f.m, t2, d, VPermRead)
	if got := vds.threadsOn(d); got != 2 {
		t.Errorf("#thread = %d after two grants, want 2", got)
	}
	grant(t, f.m, t1, d, VPermNone)
	if got := vds.threadsOn(d); got != 1 {
		t.Errorf("#thread = %d after revoke, want 1", got)
	}
	// Pinned counts as inaccessible.
	grant(t, f.m, t2, d, VPermPinned)
	if got := vds.threadsOn(d); got != 0 {
		t.Errorf("#thread = %d after pin, want 0", got)
	}
}

func TestHLRURemapReusesLastPdom(t *testing.T) {
	f := newFixture(t, cycles.X86, 4, DefaultPolicy())
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 1); err != nil { // nas=1: evictions only
		t.Fatal(err)
	}
	// 2 MiB vdoms so the PMD fast path applies.
	pmPages := pagetable.PMDSize / pg
	doms := make([]VdomID, 0)
	bases := make([]pagetable.VAddr, 0)
	for i := 0; i <= usablePdoms; i++ {
		d, b := f.newVdomRegion(t, task, pmPages, false)
		doms = append(doms, d)
		bases = append(bases, b)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
		grant(t, f.m, task, d, VPermNone)
	}
	// doms[0] was evicted to fit doms[14]. Re-activating doms[0] should
	// hit the HLRU fast path if its old pdom frees up again.
	if f.m.Stats.Evictions == 0 {
		t.Fatal("no eviction happened")
	}
	pre := f.m.Stats.HLRUHits
	// Activate doms[0] (evicts someone), then cycle enough to bring it
	// back to the same pdom.
	grant(t, f.m, task, doms[0], VPermReadWrite)
	if _, err := task.Access(bases[0], true); err != nil {
		t.Fatal(err)
	}
	if f.m.Stats.HLRUHits <= pre {
		t.Errorf("HLRU hits did not increase (pre=%d, post=%d)", pre, f.m.Stats.HLRUHits)
	}
	if f.m.Stats.PMDFastEvicts == 0 {
		t.Error("2 MiB evictions never used the PMD fast path")
	}
}

func TestStrictLRUPolicyDisablesHLRU(t *testing.T) {
	pol := DefaultPolicy()
	pol.StrictLRU = true
	f := newFixture(t, cycles.X86, 4, pol)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < usablePdoms+4; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
		grant(t, f.m, task, d, VPermNone)
	}
	if f.m.Stats.HLRUHits != 0 {
		t.Errorf("HLRU hits = %d under StrictLRU", f.m.Stats.HLRUHits)
	}
	if f.m.Stats.Evictions == 0 {
		t.Error("no evictions under nas=1")
	}
}

func TestPinnedVdomsResistEviction(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 1); err != nil {
		t.Fatal(err)
	}
	var pinned VdomID
	for i := 0; i < usablePdoms; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			pinned = d
			grant(t, f.m, task, d, VPermPinned)
		} else {
			grant(t, f.m, task, d, VPermNone)
		}
	}
	// Overflow: the pinned vdom (oldest, would be LRU victim) survives.
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	vds := f.m.VDROf(task).Current()
	if !vds.Mapped(pinned) {
		t.Error("pinned vdom was evicted while unpinned candidates existed")
	}
}

func TestAllPinnedFallsBackToLRU(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 1); err != nil {
		t.Fatal(err)
	}
	var doms []VdomID
	for i := 0; i < usablePdoms; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		doms = append(doms, d)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
		grant(t, f.m, task, d, VPermPinned)
	}
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	vds := f.m.VDROf(task).Current()
	if vds.Mapped(doms[0]) {
		t.Error("strict-LRU fallback did not evict the oldest pinned vdom")
	}
	for _, d := range doms[1:] {
		if !vds.Mapped(d) {
			t.Errorf("vdom %d evicted out of LRU order", d)
		}
	}
}

func TestEvictedVdomRemainsReachable(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 1); err != nil {
		t.Fatal(err)
	}
	type entry struct {
		d VdomID
		b pagetable.VAddr
	}
	var all []entry
	for i := 0; i < usablePdoms*2; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		all = append(all, entry{d, b})
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
		grant(t, f.m, task, d, VPermNone)
	}
	// Every vdom — including long-evicted ones — is reachable again.
	for _, e := range all {
		grant(t, f.m, task, e.d, VPermReadWrite)
		if _, err := task.Access(e.b, true); err != nil {
			t.Fatalf("vdom %d unreachable after eviction: %v", e.d, err)
		}
		grant(t, f.m, task, e.d, VPermNone)
	}
}

func TestFreeVdomReleasesPdom(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	// Fill the VDS, then free one vdom: the next allocation must map to
	// the freed pdom with no eviction or switch.
	var victim VdomID
	for i := 0; i < usablePdoms; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		if i == 3 {
			victim = d
		}
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.m.FreeVdom(victim); err != nil {
		t.Fatal(err)
	}
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if f.m.Stats.Evictions != 0 || f.m.Stats.VDSSwitches != 0 {
		t.Errorf("free pdom not reused: %+v", f.m.Stats)
	}
}

func TestFreeVdomRejectsUseAfterFree(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.FreeVdom(d); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.WrVdr(task, d, VPermReadWrite); !errors.Is(err, ErrFreedVdom) {
		t.Errorf("WrVdr on freed vdom = %v, want ErrFreedVdom", err)
	}
	if _, err := f.m.FreeVdom(d); !errors.Is(err, ErrFreedVdom) {
		t.Errorf("double free = %v, want ErrFreedVdom", err)
	}
}

func TestMprotectReassignRejected(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	d1, base := f.newVdomRegion(t, task, 4, false)
	d2, _ := f.m.AllocVdom(false)
	if _, err := f.m.Mprotect(task, base+pg, pg, d2); !errors.Is(err, ErrReassign) {
		t.Errorf("reassign = %v, want ErrReassign", err)
	}
	// Same-vdom re-assignment stays legal.
	if _, err := f.m.Mprotect(task, base+pg, pg, d1); err != nil {
		t.Errorf("same-vdom mprotect failed: %v", err)
	}
}

func TestRdVdr(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	d, _ := f.newVdomRegion(t, task, 1, false)
	if p, _, _ := f.m.RdVdr(task, d); p != VPermNone {
		t.Errorf("initial perm = %v, want AD", p)
	}
	grant(t, f.m, task, d, VPermRead)
	if p, _, _ := f.m.RdVdr(task, d); p != VPermRead {
		t.Errorf("perm = %v, want WD", p)
	}
}

func TestVdrFreeDropsProtection(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.VdrFree(task); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Access(b, false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Errorf("access after vdr_free = %v, want SIGSEGV", err)
	}
	if _, err := f.m.WrVdr(task, d, VPermRead); !errors.Is(err, ErrNoVDR) {
		t.Errorf("WrVdr after vdr_free = %v, want ErrNoVDR", err)
	}
}

func TestWrVdrCostsMatchTable3(t *testing.T) {
	// Table 3: fast wrvdr 68.8, secure wrvdr 104 (X86); 406 (ARM).
	fast := DefaultPolicy()
	fast.SecureGate = false
	for _, tc := range []struct {
		name string
		arch cycles.Arch
		pol  Policy
		want float64
	}{
		{"X86 fast", cycles.X86, fast, 68.8},
		{"X86 secure", cycles.X86, DefaultPolicy(), 104},
		{"ARM", cycles.ARM, DefaultPolicy(), 406},
	} {
		f := newFixture(t, tc.arch, 4, tc.pol)
		task := f.proc.NewTask(0)
		if _, err := f.m.VdrAlloc(task, 4); err != nil {
			t.Fatal(err)
		}
		d, b := f.newVdomRegion(t, task, 1, false)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
		// Steady-state wrvdr on a mapped vdom.
		c := grant(t, f.m, task, d, VPermRead)
		got := float64(c)
		if got < tc.want*0.9 || got > tc.want*1.1 {
			t.Errorf("%s wrvdr = %.0f cycles, want ≈%.0f", tc.name, got, tc.want)
		}
	}
}

func TestVDSSwitchCostMatchesTable3(t *testing.T) {
	// Table 3: secure wrvdr with VDS switch = 583 cycles.
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 8); err != nil {
		t.Fatal(err)
	}
	type entry struct {
		d VdomID
		b pagetable.VAddr
	}
	var all []entry
	for i := 0; i < usablePdoms*2; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		all = append(all, entry{d, b})
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
		grant(t, f.m, task, d, VPermNone)
	}
	if f.m.Stats.VDSSwitches == 0 {
		t.Fatal("no VDS switches recorded")
	}
	// Steady state: re-activate a vdom mapped in the *other* VDS.
	c := grant(t, f.m, task, all[0].d, VPermReadWrite)
	got := float64(c)
	if got < 583*0.85 || got > 583*1.15 {
		t.Errorf("wrvdr with VDS switch = %.0f cycles, want ≈583", got)
	}
}

func TestDomainFaultPathActivates(t *testing.T) {
	// Access without a preceding wrvdr→activate: grant the permission
	// while the vdom is mapped elsewhere, then fault through the access
	// path after a manual VDS move.
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 4); err != nil {
		t.Fatal(err)
	}
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	if f.m.Stats.DomainFaults != 0 {
		t.Errorf("unexpected early faults: %d", f.m.Stats.DomainFaults)
	}
}

func TestResyncAfterEvictionBlocksStaleAccess(t *testing.T) {
	// When vdom A is evicted to make room for B, the register bits that
	// previously granted A's pdom must not leak access to B's pages.
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 1); err != nil {
		t.Fatal(err)
	}
	var doms []VdomID
	var bases []pagetable.VAddr
	for i := 0; i < usablePdoms; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		doms = append(doms, d)
		bases = append(bases, b)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
	}
	// Revoke dom[0] but keep the rest accessible; activate a new vdom,
	// which evicts dom[0] and reuses its pdom.
	grant(t, f.m, task, doms[0], VPermNone)
	dNew, bNew := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, dNew, VPermReadWrite)
	if _, err := task.Access(bNew, true); err != nil {
		t.Fatal(err)
	}
	// dom[0]'s pages are evicted; touching them with no VDR perm is
	// fatal, not silently granted through stale register bits.
	if _, err := task.Access(bases[0], false); !errors.Is(err, kernel.ErrSigsegv) {
		t.Errorf("stale access = %v, want SIGSEGV", err)
	}
	// And the still-granted vdoms remain accessible.
	for i := 1; i < usablePdoms; i++ {
		if _, err := task.Access(bases[i], true); err != nil {
			t.Fatalf("vdom %d lost: %v", doms[i], err)
		}
	}
}

func TestReapVDSes(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	// nas=2: cycling many vdoms creates and abandons VDSes via the
	// migration/detach path... use PlaceInNewVDS to orphan explicitly.
	if _, err := f.m.VdrAlloc(task, 2); err != nil {
		t.Fatal(err)
	}
	// Three placements with nas=2: the detach of the budget leaves one
	// orphaned VDS behind (VDS0, the home space, is never reaped).
	for i := 0; i < 3; i++ {
		if _, err := f.m.PlaceInNewVDS(task); err != nil {
			t.Fatal(err)
		}
	}
	// Count live VDSes and registered tables before the explicit reap.
	before := len(f.m.VDSes())
	tablesBefore := f.proc.AS().NumTables()
	reaped := f.m.ReapVDSes()
	if reaped == 0 {
		t.Fatalf("nothing reaped (VDSes before: %d)", before)
	}
	if got := len(f.m.VDSes()); got != before-reaped {
		t.Errorf("VDSes = %d, want %d", got, before-reaped)
	}
	if got := f.proc.AS().NumTables(); got != tablesBefore-reaped {
		t.Errorf("registered tables = %d, want %d", got, tablesBefore-reaped)
	}
	// The thread's current VDS always survives.
	cur := f.m.VDROf(task).Current()
	found := false
	for _, v := range f.m.VDSes() {
		if v == cur {
			found = true
		}
	}
	if !found {
		t.Error("current VDS was reaped")
	}
	// System stays fully functional.
	d, b := f.newVdomRegion(t, task, 1, false)
	grant(t, f.m, task, d, VPermReadWrite)
	if _, err := task.Access(b, true); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, f.m)
}

func TestVdrFreeReapsOrphans(t *testing.T) {
	f := x86Fixture(t)
	task := f.proc.NewTask(0)
	if _, err := f.m.VdrAlloc(task, 3); err != nil {
		t.Fatal(err)
	}
	// Spread across several VDSes, then free the VDR: only VDS0 should
	// remain.
	for i := 0; i < 3*usablePdoms; i++ {
		d, b := f.newVdomRegion(t, task, 1, false)
		grant(t, f.m, task, d, VPermReadWrite)
		if _, err := task.Access(b, true); err != nil {
			t.Fatal(err)
		}
		grant(t, f.m, task, d, VPermNone)
	}
	if len(f.m.VDSes()) < 2 {
		t.Fatalf("test premise: expected multiple VDSes, got %d", len(f.m.VDSes()))
	}
	if _, err := f.m.VdrFree(task); err != nil {
		t.Fatal(err)
	}
	if got := len(f.m.VDSes()); got != 1 {
		t.Errorf("VDSes after VdrFree = %d, want 1 (home only)", got)
	}
}
