// Package serve is the supervision layer that turns the bounded chaos
// and crash soaks into a long-lived service: `vdom-bench serve` runs a
// fleet of soak shards continuously, treating faults as steady-state
// events rather than test cases.
//
// Each shard gets a Supervisor owning one steppable chaos.SoakRun, a
// rolling on-disk checkpoint ring (snapshot.Ring, last K vdom-snap/v1
// entries, written atomically via temp+rename+fsync), a stall watchdog
// (sim.Watchdog), and a seeded crash schedule. Worker panics are
// isolated into typed ShardFailures — they trigger a recovery, never
// process death. On a detected crash fault or stall the supervisor
// restores the newest checkpoint that still decodes (a corrupted entry
// is rejected by the container CRCs and recovery falls back to the
// previous ring entry), re-arms the fault injector from the
// checkpoint's chaos section, tail-replays the recorded trace, re-runs
// the cross-layer audit, and re-arms the watchdog. Recovery failures
// retry on a bounded, jitter-free exponential backoff schedule and
// escalate to shard quarantine after MaxRetries consecutive failures.
//
// The harness itself is attacked too: chaos.Pressure injects
// checkpoint-write failures (the ring keeps its older entries) and
// on-disk checkpoint corruption (caught by CRC at restore). Because
// every recovery is checkpoint restore + trace-tail replay — the exact
// machinery proven bit-identical in RECOVERY.md — a supervised run's
// final trace, end state, fault counters, and workload metrics are
// byte-identical to an uninterrupted unsupervised run of the same seed
// whenever no unrecoverable fault fired.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"vdom/internal/chaos"
	"vdom/internal/metrics"
	"vdom/internal/par"
)

// ErrQuarantined marks a shard abandoned after MaxRetries consecutive
// recovery failures; it is the root of every quarantine error.
var ErrQuarantined = errors.New("serve: shard quarantined")

// maxUnboundedOps caps an "unbounded" shard: with OpsPerShard zero, a
// duration- or context-bounded run steps up to this many ops per shard.
// The bound exists because the trace recorder (which recovery needs)
// grows with the op count; it is far beyond what any wall-clock-bounded
// soak reaches.
const maxUnboundedOps = 1 << 22

// Config parameterizes a supervised soak service. Zero fields take
// defaults.
type Config struct {
	// Shards is the fleet width (default 4). Shard i soaks under seed
	// Seed+i on its own isolated machine.
	Shards int
	// Seed is the base seed; it drives the workload, the fault
	// injector, and the crash schedule (all replayable).
	Seed uint64
	// Soak is the per-shard workload template (fault mix, machine
	// geometry). Its Seed, Ops, Record, Metrics, and Trace fields are
	// overridden per shard.
	Soak chaos.SoakConfig
	// Pressure enables the harness-side fault model (checkpoint-write
	// failures, checkpoint corruption); its seed derives per shard.
	Pressure chaos.PressureConfig

	// OpsPerShard bounds each shard's op count; 0 means unbounded (the
	// run ends on Duration or context cancellation).
	OpsPerShard int
	// Duration bounds the run in wall-clock time; 0 means no deadline
	// (the run ends on OpsPerShard or context cancellation).
	Duration time.Duration

	// CheckpointEvery is the rolling-checkpoint cadence in ops
	// (default 250; a baseline checkpoint is always taken after setup).
	CheckpointEvery int
	// Ring is the checkpoint-ring capacity per shard (default 4).
	Ring int
	// RingDir hosts the shards' checkpoint rings. Empty selects a
	// fresh temp directory, removed when Run returns.
	RingDir string
	// RingMaxAge, when positive, additionally prunes ring entries older
	// than this (the newest entry is always kept).
	RingMaxAge time.Duration

	// MaxRetries is the consecutive-recovery-failure budget before a
	// shard is quarantined (default 3).
	MaxRetries int
	// WatchdogThreshold arms the stall watchdog (default 8 consecutive
	// no-progress observations).
	WatchdogThreshold int

	// CrashEvery is the mean op interval between injected crash faults
	// (seeded, jitter within [CrashEvery/2, 3*CrashEvery/2)); 0 injects
	// none — organic stalls are still detected and recovered.
	CrashEvery int
	// CrashKinds is the crash-fault menu the schedule draws from
	// (default: all three chaos.CrashKinds).
	CrashKinds []chaos.CrashKind

	// BackoffBase and BackoffCap shape the deterministic, jitter-free
	// exponential retry schedule: attempt n sleeps
	// min(BackoffBase<<(n-1), BackoffCap). Defaults 10ms / 2s.
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// HealthEvery, when positive, invokes HealthSink with a fleet
	// health snapshot on that cadence (a final snapshot is always
	// delivered when the run ends).
	HealthEvery time.Duration
	// HealthSink receives the periodic and final health reports; nil
	// disables reporting.
	HealthSink func(*Health)

	// Metrics, when non-nil, receives the merged serve-layer health
	// counters and the recovery-latency histogram when the run ends
	// (per-shard registries are private while serving, so the merge is
	// race-free). Workload metrics stay in per-shard registries — see
	// ShardOutcome.Metrics — so they remain comparable to an
	// unsupervised run's.
	Metrics *metrics.Registry

	// hook, when set, runs at every op boundary before the op; the
	// test suite uses it to inject worker panics.
	hook func(shard, op int)
}

// normalized returns the config with defaults applied.
func (c Config) normalized() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.OpsPerShard <= 0 {
		c.OpsPerShard = maxUnboundedOps
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 250
	}
	if c.Ring <= 0 {
		c.Ring = 4
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.WatchdogThreshold <= 0 {
		c.WatchdogThreshold = 8
	}
	if len(c.CrashKinds) == 0 {
		c.CrashKinds = []chaos.CrashKind{chaos.CrashCore, chaos.CrashKernelPanic, chaos.CrashTornDomainMap}
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 2 * time.Second
	}
	return c
}

// ShardOutcome is one shard's final product.
type ShardOutcome struct {
	// Shard is the shard index.
	Shard int
	// Health is the shard's final health snapshot.
	Health ShardHealth
	// Result is the sealed soak result (trace included when healthy);
	// nil for a quarantined shard, whose wrecked state is not sealed.
	Result *chaos.SoakResult
	// Metrics is the shard's private workload registry — byte-
	// comparable to an unsupervised same-seed run's.
	Metrics *metrics.Registry
}

// Report is the completed run: final health, per-shard outcomes, and
// the merged serve-layer metrics.
type Report struct {
	// Health is the final fleet health report (serve-layer metrics
	// snapshot included).
	Health *Health
	// Shards holds each shard's outcome in shard order.
	Shards []ShardOutcome
	// Metrics is the merged serve-layer registry (health counters and
	// the serve/recovery-latency-ns histogram); identical to
	// Config.Metrics when that was provided.
	Metrics *metrics.Registry
	// RingDir is where the checkpoint rings live(d); informational.
	RingDir string
}

// Run serves the supervised soak fleet until every shard drains — by
// op budget, Duration, or context cancellation (the SIGTERM path) —
// or is quarantined. Cancellation is graceful: each shard takes a
// final checkpoint and seals its result before Run returns. The error
// covers setup failures only; shard-level outcomes, quarantines
// included, are in the Report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	if ctx == nil {
		ctx = context.Background()
	}
	ringDir := cfg.RingDir
	if ringDir == "" {
		tmp, err := os.MkdirTemp("", "vdom-serve-ring-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		ringDir = tmp
	}

	sups := make([]*Supervisor, cfg.Shards)
	for i := range sups {
		s, err := newSupervisor(cfg, ringDir, i)
		if err != nil {
			return nil, fmt.Errorf("serve: booting shard %d: %w", i, err)
		}
		sups[i] = s
	}

	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}

	// The health reporter reads every supervisor's snapshot while the
	// shard goroutines run; each snapshot is taken under the shard's
	// mutex, so the periodic report is race-free.
	done := make(chan struct{})
	var wg sync.WaitGroup
	if cfg.HealthEvery > 0 && cfg.HealthSink != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(cfg.HealthEvery)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					cfg.HealthSink(buildHealth(cfg.Seed, shardHealths(sups), nil))
				}
			}
		}()
	}

	par.Do(cfg.Shards, cfg.Shards, func(i int) { sups[i].serve(ctx, deadline) })
	close(done)
	wg.Wait()

	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	rep := &Report{Metrics: reg, RingDir: ringDir}
	rep.Shards = make([]ShardOutcome, len(sups))
	for i, s := range sups {
		reg.Merge(s.serveReg)
		rep.Shards[i] = ShardOutcome{Shard: i, Health: s.healthSnapshot(), Result: s.result, Metrics: s.reg}
	}
	rep.Health = buildHealth(cfg.Seed, shardHealths(sups), reg)
	if cfg.HealthSink != nil {
		cfg.HealthSink(rep.Health)
	}
	return rep, nil
}

// shardHealths snapshots every supervisor's health in shard order.
func shardHealths(sups []*Supervisor) []ShardHealth {
	out := make([]ShardHealth, len(sups))
	for i, s := range sups {
		out[i] = s.healthSnapshot()
	}
	return out
}
