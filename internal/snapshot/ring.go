package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Ring is a rolling on-disk checkpoint ring: the last Cap vdom-snap/v1
// snapshots of one shard, newest last. The supervised soak service
// (internal/serve) appends a checkpoint every cadence and recovers from
// the newest entry that still decodes — a corrupted or torn entry is
// detected by the container's CRCs and skipped, falling back to the
// previous one (see RECOVERY.md).
//
// Writes are atomic: each entry is written to a temp file in the same
// directory, fsync'd, and renamed into place, so a crash mid-write can
// never leave a half-visible entry under the ring's naming scheme. After
// every append the ring prunes to its capacity (and, when MaxAge is set,
// drops entries older than MaxAge — always keeping the newest), so disk
// use is bounded on an indefinitely running service.
type Ring struct {
	dir    string
	name   string
	cap    int
	maxAge time.Duration

	seq     uint64
	entries []RingEntry // oldest → newest
}

// RingEntry describes one checkpoint in the ring.
type RingEntry struct {
	// Path is the entry's file.
	Path string
	// Op is the workload op the checkpoint was taken after.
	Op int
	// Seq is the ring-wide append sequence number (monotonic, from 1).
	Seq uint64
	// Size is the encoded snapshot's size in bytes.
	Size int64
	// When is the entry's write (or scan) time; age pruning uses it.
	When time.Time
}

// NewRing opens (or creates) a ring in dir. name prefixes every entry
// file, so several shards can share a directory; cap bounds the entry
// count. Entries left by a previous process under the same (dir, name)
// are adopted in sequence order, so a restarted service resumes from its
// persisted checkpoints.
func NewRing(dir, name string, cap int) (*Ring, error) {
	if cap <= 0 {
		return nil, fmt.Errorf("snapshot: ring capacity must be positive, got %d", cap)
	}
	if name == "" || strings.ContainsAny(name, "/-") {
		return nil, fmt.Errorf("snapshot: ring name %q must be non-empty and free of '/' and '-'", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	r := &Ring{dir: dir, name: name, cap: cap}
	if err := r.scan(); err != nil {
		return nil, err
	}
	r.prune(time.Now())
	return r, nil
}

// SetMaxAge enables age-based pruning: entries older than d are removed
// on the next append (the newest entry is always kept). d <= 0 disables.
func (r *Ring) SetMaxAge(d time.Duration) { r.maxAge = d }

// Len returns the current entry count; Cap the configured capacity.
func (r *Ring) Len() int { return len(r.entries) }

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return r.cap }

// Entries returns a copy of the ring's entries, oldest first.
func (r *Ring) Entries() []RingEntry {
	return append([]RingEntry(nil), r.entries...)
}

// entryFile names an entry; the zero-padded sequence keeps lexical and
// append order identical for the restart scan.
func (r *Ring) entryFile(seq uint64, op int) string {
	return fmt.Sprintf("%s-%08d-op%d.snap", r.name, seq, op)
}

// scan adopts entries persisted by a previous run of the same ring.
func (r *Ring) scan() error {
	names, err := filepath.Glob(filepath.Join(r.dir, r.name+"-*.snap"))
	if err != nil {
		return err
	}
	for _, path := range names {
		var seq uint64
		var op int
		base := strings.TrimPrefix(filepath.Base(path), r.name+"-")
		if n, err := fmt.Sscanf(base, "%d-op%d.snap", &seq, &op); err != nil || n != 2 {
			continue // foreign file; leave it alone
		}
		info, err := os.Stat(path)
		if err != nil {
			continue
		}
		r.entries = append(r.entries, RingEntry{Path: path, Op: op, Seq: seq, Size: info.Size(), When: info.ModTime()})
		if seq > r.seq {
			r.seq = seq
		}
	}
	sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].Seq < r.entries[j].Seq })
	return nil
}

// Append writes one encoded snapshot as the ring's newest entry —
// temp file, fsync, rename — and prunes the ring to capacity.
func (r *Ring) Append(op int, data []byte) (RingEntry, error) {
	r.seq++
	path := filepath.Join(r.dir, r.entryFile(r.seq, op))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return RingEntry{}, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return RingEntry{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return RingEntry{}, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return RingEntry{}, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return RingEntry{}, err
	}
	syncDir(r.dir)
	e := RingEntry{Path: path, Op: op, Seq: r.seq, Size: int64(len(data)), When: time.Now()}
	r.entries = append(r.entries, e)
	r.prune(e.When)
	return e, nil
}

// prune drops entries beyond capacity and, with MaxAge set, entries
// older than now-MaxAge — always keeping the newest entry so recovery
// never loses its last resort.
func (r *Ring) prune(now time.Time) {
	for len(r.entries) > r.cap {
		os.Remove(r.entries[0].Path)
		r.entries = r.entries[1:]
	}
	if r.maxAge <= 0 {
		return
	}
	cutoff := now.Add(-r.maxAge)
	for len(r.entries) > 1 && r.entries[0].When.Before(cutoff) {
		os.Remove(r.entries[0].Path)
		r.entries = r.entries[1:]
	}
}

// LatestGood returns the newest entry whose container still decodes —
// magic, structure, and every section CRC verified — walking older
// entries when the newest is corrupt. skipped counts the entries passed
// over; the caller surfaces it as ring-fallback telemetry. With no
// decodable entry left, the last decode failure is returned (wrapped),
// typed per the container's sentinel errors.
func (r *Ring) LatestGood() (data []byte, e RingEntry, skipped int, err error) {
	if len(r.entries) == 0 {
		return nil, RingEntry{}, 0, fmt.Errorf("%w: checkpoint ring is empty", ErrBadRecord)
	}
	var lastErr error
	for i := len(r.entries) - 1; i >= 0; i-- {
		ent := r.entries[i]
		b, rerr := os.ReadFile(ent.Path)
		if rerr == nil {
			if _, derr := Decode(b); derr == nil {
				return b, ent, skipped, nil
			} else {
				rerr = derr
			}
		}
		lastErr = fmt.Errorf("ring entry %s: %w", filepath.Base(ent.Path), rerr)
		skipped++
	}
	return nil, RingEntry{}, skipped, fmt.Errorf("snapshot: no recoverable checkpoint in ring: %w", lastErr)
}

// syncDir fsyncs a directory so a rename is durable before the entry is
// trusted; filesystems that refuse directory fsync are tolerated.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
