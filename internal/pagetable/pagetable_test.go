package pagetable

import (
	"testing"
	"testing/quick"
)

func TestMapThenWalk(t *testing.T) {
	pt := New()
	a := VAddr(0x400000)
	pt.Map(a, 42, true, 3)
	wr := pt.Walk(a)
	if !wr.Present {
		t.Fatal("mapped page not present")
	}
	if wr.PTE.Frame != 42 || !wr.PTE.Writable || wr.PTE.Pdom != 3 {
		t.Errorf("PTE = %+v, want frame 42 writable pdom 3", wr.PTE)
	}
	if wr.LevelsVisited != Levels {
		t.Errorf("LevelsVisited = %d, want %d", wr.LevelsVisited, Levels)
	}
}

func TestWalkUnmappedShortCircuits(t *testing.T) {
	pt := New()
	wr := pt.Walk(0x1000)
	if wr.Present {
		t.Error("empty table reported a present page")
	}
	if wr.LevelsVisited != 1 {
		t.Errorf("LevelsVisited = %d on empty table, want 1", wr.LevelsVisited)
	}
	// Sibling page in the same PT: walk reaches level 4 but not present.
	pt.Map(0x2000, 1, false, 0)
	wr = pt.Walk(0x3000)
	if wr.Present || wr.LevelsVisited != 4 {
		t.Errorf("sibling walk = %+v, want not-present at level 4", wr)
	}
}

func TestUnmap(t *testing.T) {
	pt := New()
	pt.Map(0x5000, 7, false, 0)
	if pt.Present() != 1 {
		t.Fatalf("Present = %d, want 1", pt.Present())
	}
	if !pt.Unmap(0x5000) {
		t.Error("Unmap of mapped page returned false")
	}
	if pt.Present() != 0 {
		t.Errorf("Present = %d after unmap, want 0", pt.Present())
	}
	if pt.Unmap(0x5000) {
		t.Error("double Unmap returned true")
	}
	if pt.Walk(0x5000).Present {
		t.Error("unmapped page still walks")
	}
}

func TestSetPdom(t *testing.T) {
	pt := New()
	pt.Map(0x7000, 9, true, 2)
	if !pt.SetPdom(0x7000, 5) {
		t.Fatal("SetPdom on mapped page failed")
	}
	if got := pt.Walk(0x7000).PTE.Pdom; got != 5 {
		t.Errorf("pdom = %d, want 5", got)
	}
	if pt.SetPdom(0x9000, 5) {
		t.Error("SetPdom on unmapped page succeeded")
	}
}

func TestSetWritable(t *testing.T) {
	pt := New()
	pt.Map(0x7000, 9, true, 2)
	if !pt.SetWritable(0x7000, false) {
		t.Fatal("SetWritable failed")
	}
	if pt.Walk(0x7000).PTE.Writable {
		t.Error("page still writable")
	}
	if pt.SetWritable(0xA000, true) {
		t.Error("SetWritable on unmapped page succeeded")
	}
}

func TestPMDDisableFaultsWholeChunk(t *testing.T) {
	pt := New()
	base := VAddr(0x40000000) // 1 GiB, 2 MiB aligned
	for i := 0; i < 512; i++ {
		pt.Map(base+VAddr(i*PageSize), Frame(i), true, 4)
	}
	if !pt.DisablePMD(base) {
		t.Fatal("DisablePMD failed")
	}
	for _, off := range []VAddr{0, PageSize, PMDSize - PageSize} {
		wr := pt.Walk(base + off)
		if wr.Present || !wr.PMDDisabled {
			t.Fatalf("walk at +%#x = %+v, want PMD-disabled fault", uint64(off), wr)
		}
		if wr.LevelsVisited != 3 {
			t.Errorf("disabled-PMD walk visited %d levels, want 3", wr.LevelsVisited)
		}
	}
	// PTEs under the PMD survive: re-enabling restores translations.
	if !pt.EnablePMD(base) {
		t.Fatal("EnablePMD failed")
	}
	wr := pt.Walk(base + PageSize)
	if !wr.Present || wr.PTE.Frame != 1 {
		t.Errorf("after re-enable: %+v, want frame 1 present", wr)
	}
}

func TestDisablePMDEdgeCases(t *testing.T) {
	pt := New()
	if pt.DisablePMD(0x40000000) {
		t.Error("DisablePMD with no PT underneath succeeded")
	}
	pt.Map(0x40000000, 1, false, 0)
	if !pt.DisablePMD(0x40000000) {
		t.Fatal("DisablePMD failed")
	}
	if pt.DisablePMD(0x40000000) {
		t.Error("double DisablePMD succeeded")
	}
	if !pt.PMDDisabled(0x40000000) {
		t.Error("PMDDisabled = false on disabled entry")
	}
	if pt.PMDDisabled(0x80000000) {
		t.Error("PMDDisabled = true on untouched address")
	}
	if pt.EnablePMD(0x80000000) {
		t.Error("EnablePMD on untouched address succeeded")
	}
}

func TestMapUnderDisabledPMDReenables(t *testing.T) {
	pt := New()
	base := VAddr(0x40000000)
	pt.Map(base, 1, false, 0)
	pt.DisablePMD(base)
	pt.Map(base+PageSize, 2, false, 0)
	if pt.PMDDisabled(base) {
		t.Error("Map under disabled PMD did not re-enable it")
	}
	if !pt.Walk(base).Present {
		t.Error("original page lost after re-enable")
	}
}

func TestSetPdomUnderDisabledPMDReenables(t *testing.T) {
	pt := New()
	base := VAddr(0x40000000)
	pt.Map(base, 1, false, 2)
	pt.DisablePMD(base)
	if !pt.SetPdom(base, 7) {
		t.Fatal("SetPdom under disabled PMD failed")
	}
	if pt.PMDDisabled(base) {
		t.Error("SetPdom did not re-enable the PMD entry")
	}
}

func TestEvictRangeUsesPMDFastPath(t *testing.T) {
	pt := New()
	base := VAddr(0x40000000)
	// 2 MiB + 2 pages of mapped memory.
	total := PMDSize/PageSize + 2
	for i := 0; i < total; i++ {
		pt.Map(base+VAddr(i*PageSize), Frame(i), true, 4)
	}
	pmds, ptes := pt.EvictRange(base, PMDSize+2*PageSize, 1)
	if pmds != 1 {
		t.Errorf("pmds disabled = %d, want 1", pmds)
	}
	if ptes != 2 {
		t.Errorf("ptes retagged = %d, want 2", ptes)
	}
	// The tail pages carry the access-never pdom.
	if got := pt.Walk(base + PMDSize).PTE.Pdom; got != 1 {
		t.Errorf("tail page pdom = %d, want 1", got)
	}
}

func TestEvictRangeUnalignedStartUsesPTEs(t *testing.T) {
	pt := New()
	base := VAddr(0x40000000 + PageSize) // not 2 MiB aligned
	for i := 0; i < 8; i++ {
		pt.Map(base+VAddr(i*PageSize), Frame(i), true, 4)
	}
	pmds, ptes := pt.EvictRange(base, 8*PageSize, 1)
	if pmds != 0 || ptes != 8 {
		t.Errorf("(pmds, ptes) = (%d, %d), want (0, 8)", pmds, ptes)
	}
}

func TestEvictRangeCounts64MB(t *testing.T) {
	pt := New()
	base := VAddr(0x100000000)
	length := uint64(64 << 20)
	for off := uint64(0); off < length; off += PageSize {
		pt.Map(base+VAddr(off), Frame(off/PageSize), true, 4)
	}
	pmds, ptes := pt.EvictRange(base, length, 1)
	if pmds != 32 || ptes != 0 {
		t.Errorf("64 MiB eviction = (%d PMDs, %d PTEs), want (32, 0)", pmds, ptes)
	}
}

func TestRetagRange(t *testing.T) {
	pt := New()
	base := VAddr(0x10000)
	for i := 0; i < 4; i++ {
		pt.Map(base+VAddr(i*PageSize), Frame(i), true, 0)
	}
	n := pt.RetagRange(base, 6*PageSize, 9) // 2 pages unmapped
	if n != 4 {
		t.Errorf("retagged %d pages, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if got := pt.Walk(base + VAddr(i*PageSize)).PTE.Pdom; got != 9 {
			t.Errorf("page %d pdom = %d, want 9", i, got)
		}
	}
}

func TestWriteCounters(t *testing.T) {
	pt := New()
	pt.Map(0x1000, 1, false, 0)
	// First map in a fresh table: 3 directory installs + 1 PTE.
	if pt.PTEWrites != 4 {
		t.Errorf("PTEWrites = %d after first map, want 4", pt.PTEWrites)
	}
	pt.ResetCounts()
	pt.Map(0x2000, 2, false, 0) // same PT: 1 write
	if pt.PTEWrites != 1 {
		t.Errorf("PTEWrites = %d, want 1", pt.PTEWrites)
	}
	pt.ResetCounts()
	pt.DisablePMD(0x1000)
	if pt.PMDWrites != 1 || pt.PTEWrites != 0 {
		t.Errorf("counters = (%d PTE, %d PMD), want (0, 1)", pt.PTEWrites, pt.PMDWrites)
	}
}

func TestPagesIteratesInOrder(t *testing.T) {
	pt := New()
	addrs := []VAddr{0x40000000, 0x1000, 0x200000, 0x7fff000}
	for i, a := range addrs {
		pt.Map(a, Frame(i), false, 0)
	}
	var got []VAddr
	pt.Pages(func(a VAddr, pte PTE) { got = append(got, a) })
	if len(got) != len(addrs) {
		t.Fatalf("iterated %d pages, want %d", len(got), len(addrs))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Errorf("iteration not ascending: %v", got)
		}
	}
}

func TestAlignmentHelpers(t *testing.T) {
	a := VAddr(0x40000000 + 0x1234)
	if a.PageAlign() != 0x40001000 {
		t.Errorf("PageAlign = %#x", uint64(a.PageAlign()))
	}
	if a.PMDAlign() != 0x40000000 {
		t.Errorf("PMDAlign = %#x", uint64(a.PMDAlign()))
	}
	if VAddr(0x3000).VPN() != 3 {
		t.Errorf("VPN(0x3000) = %d", VAddr(0x3000).VPN())
	}
}

func TestUnalignedRangePanics(t *testing.T) {
	pt := New()
	defer func() {
		if recover() == nil {
			t.Error("unaligned EvictRange did not panic")
		}
	}()
	pt.EvictRange(0x1001, PageSize, 1)
}

// Property: Map then Walk round-trips arbitrary (page, frame, pdom) triples.
func TestMapWalkRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(vpn uint32, frame uint32, pdom uint8, w bool) bool {
		pt := New()
		a := VAddr(uint64(vpn) << PageShift)
		d := Pdom(pdom % 16)
		pt.Map(a, Frame(frame), w, d)
		wr := pt.Walk(a)
		return wr.Present && wr.PTE.Frame == Frame(frame) &&
			wr.PTE.Writable == w && wr.PTE.Pdom == d
	}, nil); err != nil {
		t.Error(err)
	}
}

// Property: Present() always equals the number of pages Pages() visits,
// across a random operation sequence.
func TestPresentCountConsistencyProperty(t *testing.T) {
	if err := quick.Check(func(ops []uint16) bool {
		pt := New()
		for _, op := range ops {
			a := VAddr(uint64(op%256) << PageShift)
			switch op % 3 {
			case 0:
				pt.Map(a, Frame(op), true, Pdom(op%16))
			case 1:
				pt.Unmap(a)
			case 2:
				pt.SetPdom(a, Pdom(op%16))
			}
		}
		n := 0
		pt.Pages(func(VAddr, PTE) { n++ })
		return n == pt.Present()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRemapRangeInvertsEvictRange(t *testing.T) {
	pt := New()
	base := VAddr(0x40000000)
	total := PMDSize/PageSize + 3 // one full chunk + 3 tail pages
	for i := 0; i < total; i++ {
		pt.Map(base+VAddr(i*PageSize), Frame(i), true, 4)
	}
	pt.EvictRange(base, PMDSize+3*PageSize, 1)
	pmds, ptes := pt.RemapRange(base, PMDSize+3*PageSize, 4)
	if pmds != 1 {
		t.Errorf("RemapRange enabled %d PMDs, want 1", pmds)
	}
	if ptes != 3 {
		t.Errorf("RemapRange retagged %d PTEs, want 3 (the tail)", ptes)
	}
	// Every page is reachable again under the original domain.
	for i := 0; i < total; i++ {
		wr := pt.Walk(base + VAddr(i*PageSize))
		if !wr.Present || wr.PTE.Pdom != 4 {
			t.Fatalf("page %d after remap: %+v", i, wr)
		}
	}
}

func TestRemapRangeOnUntouchedRange(t *testing.T) {
	pt := New()
	pmds, ptes := pt.RemapRange(0x40000000, PMDSize, 4)
	if pmds != 0 || ptes != 0 {
		t.Errorf("RemapRange on empty table = (%d, %d)", pmds, ptes)
	}
}

// Property: EvictRange followed by RemapRange to the same pdom restores
// every present page's tag, for arbitrary sub-chunk layouts.
func TestEvictRemapRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(present [16]bool, chunks uint8) bool {
		pt := New()
		base := VAddr(0x80000000)
		n := int(chunks%3) + 1 // 1..3 2MiB chunks plus a partial tail
		length := uint64(n)*PMDSize + 4*PageSize
		// Map a scattered subset of pages.
		for off := uint64(0); off < length; off += PageSize {
			if present[(off/PageSize)%16] {
				pt.Map(base+VAddr(off), Frame(off/PageSize), true, 7)
			}
		}
		pt.EvictRange(base, length, 1)
		pt.RemapRange(base, length, 7)
		ok := true
		pt.Pages(func(a VAddr, pte PTE) {
			if pte.Pdom != 7 {
				ok = false
			}
		})
		// No PMD may remain disabled.
		for off := uint64(0); off < length; off += PMDSize {
			if pt.PMDDisabled(base + VAddr(off)) {
				ok = false
			}
		}
		return ok
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
