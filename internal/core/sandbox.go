package core

// This file implements the memory-domain sandbox defenses of Table 2 that
// operate on program binaries: the binary inspection that identifies
// unsafe permission-register writes (Hodor/ERIM-style, defense ❶). The
// call-gate defense ❷ lives in gate.go (ValidateRegister) and the syscall
// filter ❸ in the kernel package (RegisterSyscallFilter).

// Op is a simplified instruction opcode for the binary-scan model.
type Op string

// The opcodes the scanner cares about.
const (
	OpWRPKRU Op = "wrpkru"
	OpRDPKRU Op = "rdpkru"
	OpXRSTOR Op = "xrstor" // can restore PKRU from memory
	OpXORECX Op = "xor ecx,ecx"
	OpCmpEAX Op = "cmp eax"
	OpJNE    Op = "jne"
	OpOther  Op = "other"
)

// Instr is one decoded instruction of a scanned binary.
type Instr struct {
	Op Op
}

// Finding is one unsafe occurrence reported by the scanner.
type Finding struct {
	// Index is the instruction offset.
	Index int
	// Op is the offending opcode.
	Op Op
}

// ScanBinary performs the sandbox's binary inspection (Table 2 ❶): every
// wrpkru or xrstor outside an approved call-gate sequence is reported. A
// wrpkru is considered gated when it is immediately followed by the
// exit-check pattern (cmp eax / jne), mirroring how Hodor and Cerberus
// whitelist their own gates and how VDom's inlined wrvdr call sites are
// vetted (§7.1). Deployments insert a hardware watchpoint before making
// any page containing an unvetted occurrence executable.
func ScanBinary(code []Instr) []Finding {
	var out []Finding
	for i, ins := range code {
		switch ins.Op {
		case OpXRSTOR:
			out = append(out, Finding{Index: i, Op: OpXRSTOR})
		case OpWRPKRU:
			if !gatedAt(code, i) {
				out = append(out, Finding{Index: i, Op: OpWRPKRU})
			}
		}
	}
	return out
}

// gatedAt reports whether the wrpkru at index i is immediately followed by
// the legality-check epilogue (cmp eax then jne, with at most one
// unrelated instruction in between and no intervening register write),
// i.e. belongs to a vetted call gate. A later gate's check cannot vouch
// for an earlier unvetted write.
func gatedAt(code []Instr, i int) bool {
	sawCmp := false
	for j := i + 1; j < len(code) && j <= i+3; j++ {
		switch code[j].Op {
		case OpWRPKRU, OpXRSTOR:
			return false // another write intervenes: not this one's check
		case OpCmpEAX:
			sawCmp = true
		case OpJNE:
			if sawCmp {
				return true
			}
		}
	}
	return false
}
