package bench

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vdom/internal/chaos"
	"vdom/internal/par"
	"vdom/internal/replay"
	"vdom/internal/tlb"
)

// snapshotSoakOps returns the per-shard op count for the crash soak.
// Each shard runs twice (uninterrupted reference + crash run), so the
// shards are shorter than the plain chaos soak's.
func (o Options) snapshotSoakOps() int {
	if o.Quick {
		return 600
	}
	return 1500
}

// snapshotShards is the fixed shard count of the crash soak; the crash
// kind cycles through the three CrashKinds across shards.
const snapshotShards = 8

// snapshotChaosConfig is the crash soak's fault mix (the full chaos
// soak mix) under a shard-derived seed.
func snapshotChaosConfig(seed uint64) chaos.Config {
	return chaos.Config{
		Seed:           seed,
		DropIPI:        0.05,
		DelayIPI:       0.05,
		StaleTLB:       0.03,
		ASIDExhaustion: 0.02,
		ASIDLimit:      tlb.ASID(24),
		VDSAllocFail:   0.10,
		PdomExhaustion: 0.05,
		SpuriousFault:  0.02,
	}
}

// SnapshotSoak runs the crash-fault soak: each shard soaks a machine
// under the full fault mix, strikes one crash fault (core crash, kernel
// panic, torn domain map — cycling across shards) mid-run, recovers via
// checkpoint restore + trace-tail replay, and verifies the recovered
// run's trace is byte-identical to an uninterrupted run of the same
// seed. Failing shards dump their checkpoint and reference trace into
// Options.TraceDump as a standalone reproducer for `vdom-bench recover`;
// Options.SoakReport captures the per-shard JSON report.
func SnapshotSoak(w io.Writer, o Options, seed uint64) error {
	ops := o.snapshotSoakOps()
	type shard struct {
		out       *chaos.CrashOutcome
		ref       *chaos.SoakResult
		err       error
		identical bool
	}
	ctx := o.ctx()
	crashCfg := chaos.CrashConfig{AtOp: 5*ops/8 + 1, CheckpointEvery: ops / 4, Ctx: ctx}
	runShard := func(i int) shard {
		cfg := chaos.SoakConfig{Chaos: snapshotChaosConfig(seed + uint64(i)), Ops: ops, Record: true}
		cc := crashCfg
		cc.Kind = chaos.CrashKind(i % 3)
		// The reference run honors the same -timeout cancellation as the
		// crash run it is compared against.
		r := chaos.StartSoak(cfg)
		for {
			if r.NextOp()%256 == 0 && ctx.Err() != nil {
				return shard{err: fmt.Errorf("reference soak cancelled at op %d: %w", r.NextOp(), ctx.Err())}
			}
			if !r.Step() {
				break
			}
		}
		ref := r.Finish()
		out, err := chaos.CrashSoak(cfg, cc)
		s := shard{out: out, ref: ref, err: err}
		if err == nil && out.Result != nil && ref.Trace != nil {
			s.identical = string(replay.Encode(ref.Trace)) == string(replay.Encode(out.Result.Trace))
		}
		return s
	}
	jobs := make([]func() shard, snapshotShards)
	for i := range jobs {
		i := i
		jobs[i] = func() shard { return runShard(i) }
	}
	shards := par.Map(o.workers(), jobs)

	// Dump failing shards' reproducers (checkpoint + reference trace)
	// before reporting, so the artifact paths land in the JSON report.
	// Shard 0's reproducer is dumped even when healthy, giving CI a
	// standing artifact to smoke `vdom-bench recover` against.
	var artifactErr error
	snapPaths := map[int]string{}
	if o.TraceDump != "" {
		if err := os.MkdirAll(o.TraceDump, 0o755); err != nil {
			return err
		}
		for i, s := range shards {
			if s.err == nil && s.identical && i != 0 {
				continue
			}
			if s.out != nil && len(s.out.Snapshot) > 0 {
				path := filepath.Join(o.TraceDump, fmt.Sprintf("crash-shard%d.snap", i))
				if err := os.WriteFile(path, s.out.Snapshot, 0o644); err != nil {
					artifactErr = err
				} else {
					snapPaths[i] = path
				}
			}
			if s.ref != nil && s.ref.Trace != nil {
				path := filepath.Join(o.TraceDump, fmt.Sprintf("crash-shard%d.trace", i))
				if err := os.WriteFile(path, replay.Encode(s.ref.Trace), 0o644); err != nil {
					artifactErr = err
				}
			}
		}
	}

	t := &Table{
		Title: fmt.Sprintf("Crash soak: %d shards x %d ops, seed %d (replayable): checkpoint -> crash -> restore + tail replay",
			snapshotShards, ops, seed),
		Columns: []string{"shard", "crash", "detected by", "ckpt op", "tail events", "recovered", "bit-identical"},
	}
	failures := 0
	for i, s := range shards {
		kind := chaos.CrashKind(i % 3).String()
		if s.err != nil {
			failures++
			t.Row(fmt.Sprintf("%d", i), kind, "-", "-", "-", fmt.Sprintf("NO: %v", s.err), "no")
			continue
		}
		ok := "yes"
		if !s.identical {
			failures++
			ok = "NO"
		}
		t.Row(fmt.Sprintf("%d", i), kind, s.out.DetectedBy,
			fmt.Sprintf("%d", s.out.CheckpointOp),
			fmt.Sprintf("%d", s.out.TailEvents), "yes", ok)
	}
	o.Render(w, t)
	if failures == 0 {
		fmt.Fprintf(w, "\nverdict: RECOVERED — every shard restored to a bit-identical run\n")
	} else {
		fmt.Fprintf(w, "\nverdict: FAILED — %d of %d shards did not recover bit-identically\n", failures, snapshotShards)
	}

	if o.SoakReport != "" {
		srs := make([]chaos.ShardReport, len(shards))
		for i, s := range shards {
			res := s.ref
			if s.out != nil && s.out.Result != nil {
				res = s.out.Result
			}
			if res == nil {
				res = &chaos.SoakResult{}
			}
			srs[i] = chaos.NewShardReport(i, seed+uint64(i), res)
			cs := &chaos.CrashShard{Kind: chaos.CrashKind(i % 3).String(), Identical: s.identical}
			if s.out != nil {
				cs.CheckpointOp = s.out.CheckpointOp
				cs.CrashOp = s.out.CrashOp
				cs.DetectedBy = s.out.DetectedBy
				cs.TailEvents = s.out.TailEvents
				cs.SnapshotPath = snapPaths[i]
			}
			if s.err != nil {
				srs[i].Unrecovered = append(srs[i].Unrecovered, fmt.Sprintf("crash recovery: %v", s.err))
			} else if !s.identical {
				srs[i].Unrecovered = append(srs[i].Unrecovered, "recovered run diverged from uninterrupted reference")
			}
			srs[i].Crash = cs
		}
		f, err := os.Create(o.SoakReport)
		if err != nil {
			return err
		}
		if err := chaos.NewReport(seed, srs).WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if artifactErr != nil {
		return artifactErr
	}
	if failures > 0 {
		// A -timeout expiry shows up as per-shard cancellation errors;
		// name the real cause instead of a misleading identity verdict.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("crash soak cancelled (%d of %d shards incomplete): %w", failures, snapshotShards, err)
		}
		return fmt.Errorf("%d of %d crash shards failed to recover bit-identically", failures, snapshotShards)
	}
	return nil
}

// Recover re-runs a crash recovery from persisted reproducer artifacts:
// Options.SnapPath (the vdom-snap/v1 checkpoint) and Options.TailPath
// (the recorded trace). It restores the checkpoint, replays the trace
// tail from the checkpoint's event index, audits the recovered System,
// and reports the outcome; a divergence or audit violation is an error.
func Recover(w io.Writer, o Options) error {
	if o.SnapPath == "" || o.TailPath == "" {
		return errors.New("recover needs -snap <checkpoint> and -tail <trace>")
	}
	snap, err := os.ReadFile(o.SnapPath)
	if err != nil {
		return err
	}
	tailBytes, err := os.ReadFile(o.TailPath)
	if err != nil {
		return err
	}
	tail, err := replay.Decode(tailBytes)
	if err != nil {
		return fmt.Errorf("decoding %s: %w", o.TailPath, err)
	}
	rec, err := chaos.RecoverFromArtifacts(snap, tail)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "recover: restored %s (%d bytes), replayed %d tail events of %d total\n",
		o.SnapPath, len(snap), rec.TailEvents, len(tail.Events))
	if len(rec.Violations) > 0 {
		for _, v := range rec.Violations {
			fmt.Fprintf(w, "  violation: %s\n", v)
		}
		return fmt.Errorf("recovered system failed audit with %d violation(s)", len(rec.Violations))
	}
	fmt.Fprintf(w, "recover: audit clean — recovered System is coherent\n")
	return nil
}
