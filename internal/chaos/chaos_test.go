package chaos

import (
	"reflect"
	"testing"

	"vdom/internal/core"
	"vdom/internal/cycles"
	"vdom/internal/hw"
	"vdom/internal/kernel"
	"vdom/internal/pagetable"
	"vdom/internal/tlb"
)

// allFaults is the full fault mix required by the acceptance criteria:
// IPI drop/delay, stale TLB retention, ASID exhaustion (plus a shrunken
// ASID space for organic rollover), transient VDS allocation failure,
// pdom exhaustion and spurious domain faults — all enabled at once.
func allFaults(seed uint64) Config {
	return Config{
		Seed:           seed,
		DropIPI:        0.05,
		DelayIPI:       0.05,
		StaleTLB:       0.03,
		ASIDExhaustion: 0.02,
		ASIDLimit:      24,
		VDSAllocFail:   0.10,
		PdomExhaustion: 0.05,
		SpuriousFault:  0.02,
	}
}

// TestSoakAllFaultsClean is the headline robustness check: a long soak
// with every fault class enabled must complete with zero auditor
// violations and zero unrecovered faults.
func TestSoakAllFaultsClean(t *testing.T) {
	res := Soak(SoakConfig{Chaos: allFaults(42), Ops: 5000})

	for _, v := range res.Violations {
		t.Errorf("auditor violation: %s", v)
	}
	for _, u := range res.Unrecovered {
		t.Errorf("unrecovered fault: %s", u)
	}
	if res.TotalInjected() == 0 {
		t.Fatal("soak injected no faults; fault mix is not exercising anything")
	}
	// Every fault class must actually have fired during the soak.
	for _, kind := range []string{
		"inject:ipi-drop", "inject:ipi-delay", "inject:stale-tlb",
		"inject:asid-exhaustion", "inject:vds-alloc-fail",
		"inject:pdom-exhaustion", "inject:spurious-fault",
	} {
		if res.Injected[kind] == 0 {
			t.Errorf("fault class %s never fired in %d ops", kind, res.Ops)
		}
	}
	// And the recovery paths must have run.
	for _, kind := range []string{
		"recover:ipi-retry", "recover:asid-rollover",
		"recover:stale-full-flush", "recover:spurious-repair",
		"recover:degraded",
	} {
		if res.Recovered[kind] == 0 {
			t.Errorf("recovery path %s never ran in %d ops", kind, res.Ops)
		}
	}
	if res.ASIDRollovers == 0 {
		t.Error("no ASID generation rollover despite shrunken ASID space")
	}
	if res.Audits < res.Ops/100 {
		t.Errorf("only %d audit passes over %d ops", res.Audits, res.Ops)
	}
}

// TotalInjected sums a result's injection counters (test helper mirror of
// the injector method).
func (r *SoakResult) TotalInjected() uint64 {
	var n uint64
	for _, v := range r.Injected {
		n += v
	}
	return n
}

// TestSoakDeterministic replays the same seed twice and demands the
// identical fault/recovery event sequence, counters and cycle total.
func TestSoakDeterministic(t *testing.T) {
	cfg := SoakConfig{Chaos: allFaults(7), Ops: 2000}
	a := Soak(cfg)
	b := Soak(cfg)

	if a.Cycles != b.Cycles {
		t.Errorf("cycle totals diverge: %d vs %d", a.Cycles, b.Cycles)
	}
	if !reflect.DeepEqual(a.Injected, b.Injected) {
		t.Errorf("injection counters diverge:\n%v\n%v", a.Injected, b.Injected)
	}
	if !reflect.DeepEqual(a.Recovered, b.Recovered) {
		t.Errorf("recovery counters diverge:\n%v\n%v", a.Recovered, b.Recovered)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event logs diverge in length: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverges: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}

	// A different seed must produce a different fault stream.
	c := Soak(SoakConfig{Chaos: allFaults(8), Ops: 2000})
	if reflect.DeepEqual(a.Injected, c.Injected) && a.Cycles == c.Cycles {
		t.Error("different seeds produced an identical run; PRNG is not seeded")
	}
}

// TestSoakCleanWhenOff runs the soak with a zero-probability injector:
// nothing may fire, nothing may fail, and the auditor must stay clean.
func TestSoakCleanWhenOff(t *testing.T) {
	off := Soak(SoakConfig{Chaos: Config{Seed: 99}, Ops: 1500})
	if n := off.TotalInjected(); n != 0 {
		t.Fatalf("zero-probability config injected %d faults", n)
	}
	for _, v := range off.Violations {
		t.Errorf("auditor violation with chaos off: %s", v)
	}
	for _, u := range off.Unrecovered {
		t.Errorf("unrecovered op with chaos off: %s", u)
	}
}

// miniWorkload drives a fixed grant/access/revoke/free sequence and
// returns its total cycle cost, with or without a (zero-probability)
// injector attached to every layer.
func miniWorkload(t *testing.T, withInjector bool) cycles.Cost {
	t.Helper()
	machine := hw.NewMachine(hw.Config{NumCores: 2})
	kern := kernel.New(kernel.Config{Machine: machine, VDomEnabled: true})
	var in *Injector
	if withInjector {
		in = New(Config{Seed: 1}) // every probability zero
		in.AttachMachine(machine)
		in.AttachKernel(kern)
	}
	proc := kern.NewProcess()
	mgr := core.Attach(proc, core.DefaultPolicy())
	if withInjector {
		in.AttachManager(mgr)
	}
	t0 := proc.NewTask(0)
	t1 := proc.NewTask(1)

	var total cycles.Cost
	step := func(c cycles.Cost, err error) {
		if err != nil {
			t.Fatalf("mini workload step failed: %v", err)
		}
		total += c
	}
	base := pagetable.VAddr(0x5000_0000)
	step(t0.Mmap(base, 16*pagetable.PageSize, true))
	for _, task := range []*kernel.Task{t0, t1} {
		step(mgr.VdrAlloc(task, 0))
	}
	var ds []core.VdomID
	for i := 0; i < 3; i++ {
		d, c := mgr.AllocVdom(false)
		total += c
		step(mgr.Mprotect(t0, base+pagetable.VAddr(i*4)*pagetable.PageSize,
			4*pagetable.PageSize, d))
		ds = append(ds, d)
	}
	for _, d := range ds {
		step(mgr.WrVdr(t0, d, core.VPermReadWrite))
		step(mgr.WrVdr(t1, d, core.VPermRead))
	}
	for i := 0; i < 12; i++ {
		step(t0.Access(base+pagetable.VAddr(i)*pagetable.PageSize, true))
		step(t1.Access(base+pagetable.VAddr(i)*pagetable.PageSize, false))
	}
	step(mgr.WrVdr(t1, ds[0], core.VPermNone)) // cross-core revoke shootdown
	step(mgr.FreeVdom(ds[1]))
	if withInjector && in.TotalInjected()+in.TotalRecovered() != 0 {
		t.Fatalf("zero-probability injector recorded events: %v / %v",
			in.Injected(), in.Recovered())
	}
	return total
}

// TestZeroCostWhenOff proves the fault hooks are free when disabled: the
// identical workload charges exactly the same cycles with a
// zero-probability injector attached as with no injector at all.
func TestZeroCostWhenOff(t *testing.T) {
	bare := miniWorkload(t, false)
	hooked := miniWorkload(t, true)
	if bare != hooked {
		t.Fatalf("chaos hooks are not zero-cost when off: %d cycles bare, %d hooked",
			bare, hooked)
	}
}

// TestAuditCatchesIncoherence plants deliberate incoherences in a core's
// TLB and checks the auditor reports each — guarding against an auditor
// that passes because it checks nothing.
func TestAuditCatchesIncoherence(t *testing.T) {
	machine := hw.NewMachine(hw.Config{NumCores: 2})
	kern := kernel.New(kernel.Config{Machine: machine, VDomEnabled: true})
	proc := kern.NewProcess()
	mgr := core.Attach(proc, core.DefaultPolicy())
	task := proc.NewTask(0)
	base := pagetable.VAddr(0x6000_0000)
	if _, err := task.Mmap(base, 4*pagetable.PageSize, true); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Access(base, true); err != nil {
		t.Fatal(err)
	}
	if got := Audit(machine, kern, mgr); len(got) != 0 {
		t.Fatalf("clean system reported violations: %v", got)
	}

	// A translation for a live ASID that the page table no longer backs.
	machine.Core(0).TLB().Insert(tlb.Entry{
		ASID: task.BaseASID(), VPN: uint64(base)/pagetable.PageSize + 100,
	})
	// A cached entry writable beyond its PTE.
	wr := proc.AS().Shadow().Walk(base)
	machine.Core(1).TLB().Insert(tlb.Entry{
		ASID: task.BaseASID(), VPN: uint64(base) / pagetable.PageSize,
		Frame: wr.PTE.Frame + 7, Pdom: wr.PTE.Pdom, Writable: true,
	})
	got := Audit(machine, kern, mgr)
	if len(got) != 2 {
		t.Fatalf("planted 2 incoherences, auditor found %d: %v", len(got), got)
	}
	// A zombie entry (retired ASID) must NOT be flagged.
	machine.Core(1).TLB().Insert(tlb.Entry{ASID: 0x7777, VPN: 1, Frame: 1})
	if after := Audit(machine, kern, mgr); len(after) != 2 {
		t.Fatalf("zombie ASID entry changed the verdict: %v", after)
	}
}

// TestSoakResultMerge checks that merging two shard soaks in shard order
// reproduces the counters of one run covering both shards' work: sums,
// key-wise map addition, ordered listing append, and CoreStats addition.
func TestSoakResultMerge(t *testing.T) {
	run := func(seed uint64, ops int) *SoakResult {
		return Soak(SoakConfig{
			Chaos: Config{Seed: seed, DropIPI: 0.1, StaleTLB: 0.05, VDSAllocFail: 0.2},
			Ops:   ops,
		})
	}
	a, b := run(1, 300), run(2, 300)

	var agg SoakResult
	agg.Merge(a)
	agg.Merge(b)
	agg.Merge(nil) // must be a no-op

	if agg.Ops != a.Ops+b.Ops || agg.Cycles != a.Cycles+b.Cycles ||
		agg.Audits != a.Audits+b.Audits {
		t.Errorf("scalar sums wrong: agg=%+v", agg)
	}
	for k, v := range a.Injected {
		if agg.Injected[k] != v+b.Injected[k] {
			t.Errorf("Injected[%q] = %d, want %d", k, agg.Injected[k], v+b.Injected[k])
		}
	}
	if len(agg.Events) != len(a.Events)+len(b.Events) {
		t.Errorf("Events len = %d, want %d", len(agg.Events), len(a.Events)+len(b.Events))
	}
	if n := len(a.Events); n > 0 && len(b.Events) > 0 {
		if !reflect.DeepEqual(agg.Events[n], b.Events[0]) {
			t.Error("Merge did not append b's events after a's")
		}
	}
	if got, want := agg.CoreStats, a.CoreStats.Add(b.CoreStats); got != want {
		t.Errorf("CoreStats = %+v, want %+v", got, want)
	}
}
